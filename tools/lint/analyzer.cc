#include "tools/lint/analyzer.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace khuzdul
{
namespace lint
{

namespace
{

// ---------------------------------------------------------------
// Rules table.
// ---------------------------------------------------------------

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
        {"wall-clock", RuleScope::AllSources,
         "no wall-clock reads (steady_clock/system_clock/...) — "
         "modeled time comes from the cost model; host-observability "
         "sites need an annotation or allowlist entry"},
        {"prng", RuleScope::AllSources,
         "no std PRNG sources (random_device/mt19937/rand/...) — "
         "all randomness derives from support/rng.hh seeds"},
        {"unordered-iter", RuleScope::ModeledZones,
         "no std::unordered_{map,set} in modeled zones — iteration "
         "order is nondeterministic; lookup-only uses must be "
         "annotated with a reason, iterated uses replaced by sorted "
         "containers"},
        {"thread-primitive", RuleScope::ModeledZones,
         "no std threading/atomics in modeled zones outside "
         "core/parallel/ and core/service/ — units communicate only "
         "via per-unit deltas merged in unit order"},
        {"fabric-mutation", RuleScope::ModeledZones,
         "fabric ledger mutation only via Fabric::apply / "
         "CirculantScheduler::issue outside sim/fabric.cc — no raw "
         "recordTransfer/setByteCap/reset calls"},
        {"fault-modeled-state", RuleScope::RecoveryPaths,
         "fault triggers, recovery decisions and steal planning read "
         "only modeled ledger state — no Timer/hostWallNs/elapsedNs "
         "or support/timer.hh in sim/faults.*, the provider/circulant "
         "recovery paths, core/steal/, or core/recovery/"},
        {"simd-intrinsics", RuleScope::AllSources,
         "x86 intrinsics (immintrin.h/_mm*/__m256/...) only in "
         "src/core/kernels/ — the SIMD tier is the one place where "
         "host CPU features may shape execution; everywhere else "
         "needs an annotation or allowlist entry"},
        {"header-guard", RuleScope::HeadersOnly,
         "every header opens with #pragma once or an #ifndef guard"},
        {"using-namespace-header", RuleScope::HeadersOnly,
         "no `using namespace` at header scope"},
        {"taint-wall-clock", RuleScope::ModeledZones,
         "no modeled-zone call chain may reach a wall-clock source "
         "in any layer — reported with the full chain; see --why"},
        {"taint-prng", RuleScope::ModeledZones,
         "no modeled-zone call chain may reach a std PRNG source — "
         "support helpers doing their own seeding taint every "
         "modeled caller"},
        {"taint-unordered-iter", RuleScope::ModeledZones,
         "no modeled-zone call chain may reach unordered-container "
         "code outside the zone's own annotated carve-outs"},
        {"taint-thread-primitive", RuleScope::ModeledZones,
         "no modeled-zone call chain (outside core/parallel/ and "
         "core/service/) may reach std threading/atomics"},
        {"taint-fabric-mutation", RuleScope::ModeledZones,
         "no modeled-zone call chain may reach a raw fabric ledger "
         "mutation outside sim/fabric.*"},
        {"taint-host-time", RuleScope::RecoveryPaths,
         "no fault/recovery/steal-planning call chain may reach "
         "Timer/hostWallNs/elapsedNs host-timing state"},
        {"layering", RuleScope::AllSources,
         "includes must respect the layer order support -> graph/sim "
         "-> core -> engines -> apps/tools and stay acyclic"},
    };
    return table;
}

/** The token pattern shared with the taint facts (symbols.hh). */
const std::string &
factPatternSource(const std::string &id)
{
    for (const auto &[fact, source] : factPatterns())
        if (fact == id)
            return source;
    static const std::string empty;
    return empty;
}

// ---------------------------------------------------------------
// Annotation parsing: // khuzdul-lint: allow(<rule>) <reason>
// ---------------------------------------------------------------

struct Annotation
{
    std::string rule;
    std::string reason;
    int sourceLine = 0; ///< where the annotation itself sits
    bool used = false;
};

const char kAnnotationMarker[] = "khuzdul-lint:";

/**
 * Parse every annotation on @p raw (a raw source line).  Grammar
 * errors append to @p errors and yield no annotation.
 */
std::vector<Annotation>
parseAnnotations(const std::string &path, int line_no,
                 const std::string &raw, std::vector<std::string> &errors)
{
    std::vector<Annotation> result;
    static const std::regex grammar(
        R"(khuzdul-lint:\s*allow\(([A-Za-z0-9_-]+)\)[ \t]*(.*))");
    std::size_t pos = raw.find(kAnnotationMarker);
    while (pos != std::string::npos) {
        std::smatch m;
        const std::string tail = raw.substr(pos);
        std::ostringstream where;
        where << path << ":" << line_no;
        if (!std::regex_search(tail, m, grammar)
            || m.position(0) != 0) {
            errors.push_back(where.str()
                             + ": malformed khuzdul-lint annotation "
                               "(expected `khuzdul-lint: "
                               "allow(<rule>) <reason>`)");
            break;
        }
        Annotation a;
        a.rule = m[1].str();
        a.reason = trimCopy(m[2].str());
        a.sourceLine = line_no;
        if (!isRuleId(a.rule)) {
            errors.push_back(where.str() + ": annotation names unknown "
                                           "rule `" + a.rule + "`");
        } else if (a.reason.empty()) {
            errors.push_back(where.str() + ": allow(" + a.rule
                             + ") annotation is missing its written "
                               "reason");
        } else {
            result.push_back(std::move(a));
        }
        pos = raw.find(kAnnotationMarker,
                       pos + sizeof(kAnnotationMarker) - 1);
    }
    return result;
}

// ---------------------------------------------------------------
// Token rules.
// ---------------------------------------------------------------

struct TokenRule
{
    const char *id;
    std::regex pattern;
    const char *message;
    bool skipIncludeLines;
};

const std::vector<TokenRule> &
tokenRules()
{
    static const std::vector<TokenRule> rules = [] {
        std::vector<TokenRule> r;
        // The first six patterns are the taint facts: built from
        // the same strings (symbols.hh factPatterns) so the two
        // layers can never drift.
        r.push_back(
            {"wall-clock",
             std::regex(factPatternSource("wall-clock")),
             "wall-clock source — modeled results must not read host "
             "time; annotate genuine host-observability sites",
             false});
        r.push_back(
            {"prng",
             std::regex(factPatternSource("prng")),
             "std PRNG source — derive all randomness from "
             "support/rng.hh so runs are bit-exact",
             false});
        r.push_back(
            {"unordered-iter",
             std::regex(factPatternSource("unordered-iter")),
             "unordered container in a modeled zone — iteration order "
             "is nondeterministic; use a sorted container or annotate "
             "the lookup-only use",
             true});
        r.push_back(
            {"thread-primitive",
             std::regex(factPatternSource("thread-primitive")),
             "threading primitive in a modeled zone — host "
             "parallelism lives in core/parallel/ and the query "
             "scheduler in core/service/; units exchange state only "
             "via per-unit deltas merged in unit order",
             false});
        r.push_back(
            {"fabric-mutation",
             std::regex(factPatternSource("fabric-mutation")),
             "direct fabric ledger mutation — route transfers through "
             "Fabric::apply or CirculantScheduler::issue",
             false});
        r.push_back(
            {"simd-intrinsics",
             std::regex(R"(#\s*include\s*<(immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|tmmintrin|nmmintrin|avxintrin|avx2intrin)\.h>|\b_mm\d*_\w+\s*\(|\b__m(128|256|512)[id]?\b|\b__builtin_ia32_\w+)"),
             "x86 intrinsic outside src/core/kernels/ — vectorized "
             "code lives in the kernel tier behind runtime feature "
             "detection so every other layer stays portable and "
             "host-invariant",
             false});
        r.push_back(
            {"fault-modeled-state",
             std::regex(factPatternSource("fault-modeled-state")),
             "host-time symbol in a fault/recovery path — fault "
             "triggers and retry pricing must read only modeled "
             "ledger state (link ordinals, the modeled clock) so "
             "plans replay bit-identically",
             false});
        return r;
    }();
    return rules;
}

bool
ruleAppliesTo(const std::string &rule, const std::string &path)
{
    if (rule == "unordered-iter")
        return isModeledZone(path);
    if (rule == "thread-primitive")
        return isModeledZone(path) && !isParallelRuntime(path)
            && !isServiceRuntime(path);
    if (rule == "fabric-mutation")
        return isModeledZone(path) && !isFabricImpl(path);
    if (rule == "fault-modeled-state")
        return isRecoveryPath(path);
    if (rule == "simd-intrinsics")
        return !isKernelTier(path);
    return true; // wall-clock, prng: every scanned file
}

bool
isIncludeLine(const std::string &code)
{
    const std::string t = trimCopy(code);
    return t.rfind("#include", 0) == 0
        || (t.rfind("#", 0) == 0
            && trimCopy(t.substr(1)).rfind("include", 0) == 0);
}

// ---------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
suppressionName(SuppressionKind kind)
{
    switch (kind) {
    case SuppressionKind::None:
        return "none";
    case SuppressionKind::Annotation:
        return "annotation";
    case SuppressionKind::Allowlist:
        return "allowlist";
    }
    return "none";
}

} // namespace

// ---------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return ruleTable();
}

bool
isRuleId(const std::string &id)
{
    for (const RuleInfo &r : ruleTable())
        if (r.id == id)
            return true;
    return false;
}

std::size_t
Report::violations() const
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding &f) { return f.live(); }));
}

std::size_t
Report::suppressed() const
{
    return findings.size() - violations();
}

bool
Report::passes(bool strict) const
{
    if (violations() > 0 || !errors.empty())
        return false;
    if (strict && !stale.empty())
        return false;
    return true;
}

std::vector<AllowlistEntry>
parseAllowlist(const std::string &content, const std::string &file,
               std::vector<std::string> &errors)
{
    std::vector<AllowlistEntry> entries;
    std::istringstream in(content);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string t = trimCopy(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::istringstream fields(t);
        AllowlistEntry e;
        fields >> e.path >> e.rule;
        std::getline(fields, e.reason);
        e.reason = trimCopy(e.reason);
        e.line = line_no;
        std::ostringstream where;
        where << file << ":" << line_no;
        if (e.path.empty() || e.rule.empty()) {
            errors.push_back(where.str()
                             + ": allowlist line needs `<path> <rule> "
                               "<reason>`");
            continue;
        }
        if (!isRuleId(e.rule)) {
            errors.push_back(where.str() + ": allowlist names unknown "
                                           "rule `" + e.rule + "`");
            continue;
        }
        if (e.reason.empty()) {
            errors.push_back(where.str() + ": allowlist entry for "
                             + e.path + " is missing its written "
                                        "reason");
            continue;
        }
        e.path = normalizePath(e.path);
        entries.push_back(std::move(e));
    }
    return entries;
}

namespace
{

/** Whether allowlist @p entry covers @p path (anchored suffix). */
bool
allowlistCovers(const AllowlistEntry &entry, const std::string &path)
{
    if (path == entry.path)
        return true;
    return endsWith(path, "/" + entry.path);
}

/** One file's scan state: sanitized lines, annotation shields and
 *  the as-yet-unsuppressed token findings. */
struct FileScan
{
    std::string path;
    std::vector<std::string> rawLines;
    std::vector<std::string> codeLines;
    /** shielded line → annotations targeting it */
    std::map<int, std::vector<Annotation>> shields;
    std::vector<Finding> findings;
};

FileScan
scanOne(const std::string &raw_path, const std::string &content,
        std::vector<std::string> &errors)
{
    FileScan scan;
    scan.path = normalizePath(raw_path);

    {
        std::istringstream in(content);
        std::string line;
        while (std::getline(in, line))
            scan.rawLines.push_back(line);
    }

    // Pass 1: sanitize (comments/strings blanked) and collect
    // annotations keyed by the line they shield: their own line if
    // it carries code, otherwise the next line.
    scan.codeLines.resize(scan.rawLines.size());
    bool in_block = false;
    for (std::size_t i = 0; i < scan.rawLines.size(); ++i) {
        scan.codeLines[i] = sanitizeLine(scan.rawLines[i], in_block);
        auto annotations = parseAnnotations(
            scan.path, static_cast<int>(i + 1), scan.rawLines[i],
            errors);
        if (annotations.empty())
            continue;
        const int target = isBlank(scan.codeLines[i])
            ? static_cast<int>(i + 2)
            : static_cast<int>(i + 1);
        auto &bucket = scan.shields[target];
        bucket.insert(bucket.end(), annotations.begin(),
                      annotations.end());
    }

    const auto emit = [&](int line_no, const std::string &rule,
                          const std::string &message) {
        Finding f;
        f.file = scan.path;
        f.line = line_no;
        f.rule = rule;
        f.message = message;
        f.snippet = line_no >= 1
                && line_no <= static_cast<int>(scan.rawLines.size())
            ? trimCopy(
                  scan.rawLines[static_cast<std::size_t>(line_no - 1)])
            : std::string();
        scan.findings.push_back(std::move(f));
    };

    // Header hygiene.
    if (isHeaderPath(scan.path)) {
        int first_code = 0;
        for (std::size_t i = 0; i < scan.codeLines.size(); ++i) {
            if (!isBlank(scan.codeLines[i])) {
                first_code = static_cast<int>(i + 1);
                break;
            }
        }
        const std::string opening = first_code == 0
            ? std::string()
            : trimCopy(scan.codeLines[static_cast<std::size_t>(
                  first_code - 1)]);
        const bool guarded = opening.rfind("#pragma once", 0) == 0
            || opening.rfind("#ifndef", 0) == 0;
        if (!guarded)
            emit(first_code == 0 ? 1 : first_code, "header-guard",
                 "header must open with #pragma once or an #ifndef "
                 "include guard");
        static const std::regex using_ns(R"(\busing\s+namespace\b)");
        for (std::size_t i = 0; i < scan.codeLines.size(); ++i)
            if (std::regex_search(scan.codeLines[i], using_ns))
                emit(static_cast<int>(i + 1), "using-namespace-header",
                     "`using namespace` in a header leaks into every "
                     "includer");
    }

    // Token rules.
    for (const TokenRule &rule : tokenRules()) {
        if (!ruleAppliesTo(rule.id, scan.path))
            continue;
        for (std::size_t i = 0; i < scan.codeLines.size(); ++i) {
            if (scan.codeLines[i].empty())
                continue;
            if (rule.skipIncludeLines && isIncludeLine(scan.codeLines[i]))
                continue;
            if (std::regex_search(scan.codeLines[i], rule.pattern))
                emit(static_cast<int>(i + 1), rule.id, rule.message);
        }
    }

    return scan;
}

/** Per-line annotation first, then the allowlist. */
void
applySuppression(Finding &f,
                 std::map<int, std::vector<Annotation>> &shields,
                 std::vector<AllowlistEntry> *allowlist)
{
    const auto it = shields.find(f.line);
    if (it != shields.end()) {
        for (Annotation &a : it->second) {
            if (a.rule == f.rule) {
                f.suppression = SuppressionKind::Annotation;
                f.reason = a.reason;
                a.used = true;
                return;
            }
        }
    }
    if (allowlist != nullptr) {
        for (AllowlistEntry &e : *allowlist) {
            if (e.rule == f.rule && allowlistCovers(e, f.file)) {
                f.suppression = SuppressionKind::Allowlist;
                f.reason = e.reason;
                e.used = true;
                return;
            }
        }
    }
}

void
emitStaleAnnotations(const FileScan &scan, Report &out)
{
    for (const auto &[target, bucket] : scan.shields) {
        (void)target;
        for (const Annotation &a : bucket) {
            if (a.used)
                continue;
            StaleSuppression s;
            s.file = scan.path;
            s.line = a.sourceLine;
            s.rule = a.rule;
            s.detail = "allow(" + a.rule
                + ") annotation suppresses nothing";
            out.stale.push_back(std::move(s));
        }
    }
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

} // namespace

void
analyzeSource(const std::string &raw_path, const std::string &content,
              std::vector<AllowlistEntry> *allowlist, Report &out)
{
    ++out.filesScanned;
    FileScan scan = scanOne(raw_path, content, out.errors);
    for (Finding &f : scan.findings) {
        applySuppression(f, scan.shields, allowlist);
        out.findings.push_back(std::move(f));
    }
    emitStaleAnnotations(scan, out);
}

Analysis
analyzeProgram(const std::vector<std::string> &paths,
               std::vector<AllowlistEntry> allowlist,
               const std::string &allowlist_file,
               const Options &options)
{
    namespace fs = std::filesystem;
    Analysis analysis;
    Report &report = analysis.report;

    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (!it->is_regular_file())
                    continue;
                const std::string f =
                    normalizePath(it->path().generic_string());
                if (isSourcePath(f))
                    files.push_back(f);
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(normalizePath(p));
        } else {
            report.errors.push_back("cannot open path: " + p);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<FileScan> scans;
    scans.reserve(files.size());
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            report.errors.push_back("cannot read file: " + file);
            continue;
        }
        std::ostringstream content;
        content << in.rdbuf();
        ++report.filesScanned;
        FileScan scan = scanOne(file, content.str(), report.errors);

        SourceFile source;
        source.path = scan.path;
        source.codeLines = scan.codeLines;
        for (const auto &[target, bucket] : scan.shields)
            for (const Annotation &a : bucket)
                source.allowedRules[target][a.rule] = a.reason;
        extractFile(analysis.program, std::move(source),
                    scan.rawLines);
        scans.push_back(std::move(scan));
    }
    finalizeProgram(analysis.program);
    analysis.graph = buildCallGraph(analysis.program);
    report.functionsExtracted = analysis.program.functions.size();
    report.callEdges = analysis.graph.edges.size();

    std::map<std::string, std::size_t> scanIndex;
    for (std::size_t i = 0; i < scans.size(); ++i)
        scanIndex[scans[i].path] = i;

    const auto attach = [&](Finding f) {
        const auto it = scanIndex.find(f.file);
        if (it == scanIndex.end()) {
            report.findings.push_back(std::move(f));
            return;
        }
        FileScan &scan = scans[it->second];
        if (f.snippet.empty() && f.line >= 1
            && f.line <= static_cast<int>(scan.rawLines.size()))
            f.snippet = trimCopy(
                scan.rawLines[static_cast<std::size_t>(f.line - 1)]);
        scan.findings.push_back(std::move(f));
    };

    if (options.taint) {
        analysis.taint
            = propagateTaint(analysis.program, analysis.graph);
        report.factSeeds
            = static_cast<std::size_t>(analysis.taint.seedCount);
        for (const TaintFinding &tf : analysis.taint.findings) {
            Finding f;
            f.file = tf.file;
            f.line = tf.line;
            f.rule = tf.rule;
            f.message = tf.message;
            f.chain = tf.chain;
            attach(std::move(f));
        }
    }

    if (options.layering) {
        for (const LayerViolation &lv :
             checkLayering(analysis.program)) {
            Finding f;
            f.file = lv.file;
            f.line = lv.line;
            f.rule = "layering";
            f.message = lv.message;
            attach(std::move(f));
        }
    }

    // Suppression and stale resolution run only after every layer
    // has produced its findings, so an annotation that shields a
    // taint or layering finding is never misreported as stale.
    for (FileScan &scan : scans) {
        for (Finding &f : scan.findings) {
            applySuppression(f, scan.shields, &allowlist);
            report.findings.push_back(std::move(f));
        }
    }
    for (const FileScan &scan : scans)
        emitStaleAnnotations(scan, report);

    for (const AllowlistEntry &e : allowlist) {
        if (e.used)
            continue;
        StaleSuppression s;
        s.file = allowlist_file.empty() ? "<allowlist>" : allowlist_file;
        s.line = e.line;
        s.rule = e.rule;
        s.detail = "allowlist entry `" + e.path + " " + e.rule
            + "` matches no finding";
        report.stale.push_back(std::move(s));
    }

    sortFindings(report.findings);
    return analysis;
}

Report
analyzePaths(const std::vector<std::string> &paths,
             std::vector<AllowlistEntry> allowlist,
             const std::string &allowlist_file, const Options &options)
{
    return analyzeProgram(paths, std::move(allowlist), allowlist_file,
                          options)
        .report;
}

std::string
toJson(const Report &report, bool strict)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"tool\": \"khuzdul_lint\",\n";
    out << "  \"schema_version\": 2,\n";
    out << "  \"strict\": " << (strict ? "true" : "false") << ",\n";
    out << "  \"files_scanned\": " << report.filesScanned << ",\n";
    out << "  \"functions\": " << report.functionsExtracted << ",\n";
    out << "  \"call_edges\": " << report.callEdges << ",\n";
    out << "  \"fact_seeds\": " << report.factSeeds << ",\n";
    out << "  \"violations\": " << report.violations() << ",\n";
    out << "  \"suppressed\": " << report.suppressed() << ",\n";
    out << "  \"passed\": " << (report.passes(strict) ? "true" : "false")
        << ",\n";
    out << "  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\", \"snippet\": \""
            << jsonEscape(f.snippet) << "\", \"chain\": [";
        for (std::size_t h = 0; h < f.chain.size(); ++h) {
            if (h != 0)
                out << ", ";
            out << "\"" << jsonEscape(f.chain[h]) << "\"";
        }
        out << "], \"suppression\": \""
            << suppressionName(f.suppression) << "\", \"reason\": \""
            << jsonEscape(f.reason) << "\"}";
    }
    out << (report.findings.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"stale_suppressions\": [";
    for (std::size_t i = 0; i < report.stale.size(); ++i) {
        const StaleSuppression &s = report.stale[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": \"" << jsonEscape(s.file)
            << "\", \"line\": " << s.line << ", \"rule\": \""
            << jsonEscape(s.rule) << "\", \"detail\": \""
            << jsonEscape(s.detail) << "\"}";
    }
    out << (report.stale.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"errors\": [";
    for (std::size_t i = 0; i < report.errors.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n");
        out << "    \"" << jsonEscape(report.errors[i]) << "\"";
    }
    out << (report.errors.empty() ? "]" : "\n  ]") << "\n";
    out << "}\n";
    return out.str();
}

std::string
toText(const Report &report, bool strict)
{
    std::ostringstream out;
    for (const Finding &f : report.findings) {
        if (!f.live())
            continue;
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
        if (!f.snippet.empty())
            out << "    " << f.snippet << "\n";
    }
    for (const std::string &e : report.errors)
        out << "error: " << e << "\n";
    if (strict) {
        for (const StaleSuppression &s : report.stale)
            out << s.file << ":" << s.line << ": [stale] " << s.detail
                << "\n";
    }
    out << "khuzdul_lint: " << report.filesScanned << " files, "
        << report.violations() << " violation(s), "
        << report.suppressed() << " suppressed";
    if (strict)
        out << ", " << report.stale.size() << " stale suppression(s)";
    out << " — " << (report.passes(strict) ? "PASS" : "FAIL") << "\n";
    return out.str();
}

std::string
rulesText()
{
    std::ostringstream out;
    out << "rule                     scope     contract\n";
    out << "----                     -----     --------\n";
    for (const RuleInfo &r : rules()) {
        const char *scope = "src";
        if (r.scope == RuleScope::ModeledZones)
            scope = "modeled";
        else if (r.scope == RuleScope::HeadersOnly)
            scope = "headers";
        else if (r.scope == RuleScope::RecoveryPaths)
            scope = "recovery";
        char row[64];
        std::snprintf(row, sizeof row, "%-24s %-9s ", r.id.c_str(),
                      scope);
        out << row << r.summary << "\n";
    }
    out << "\nsuppress one line:  // khuzdul-lint: allow(<rule>) "
           "<reason>\n";
    out << "suppress one file:  `<path> <rule> <reason>` in the "
           "allowlist\n";
    return out.str();
}

std::string
usageText()
{
    return "usage: khuzdul_lint [options] <path>...\n"
           "\n"
           "Static determinism-contract analyzer for the khuzdul\n"
           "modeled zones (DESIGN.md section 8): per-line token\n"
           "rules plus cross-TU taint propagation and the\n"
           "architecture-layering check.\n"
           "\n"
           "options:\n"
           "  --allowlist <file>  load whole-file suppressions\n"
           "  --strict            fail on stale suppressions too\n"
           "  --json              machine-readable report (schema v2)\n"
           "  --layering          enforce the include-layer order\n"
           "  --no-taint          token rules only, no cross-TU pass\n"
           "  --facts             dump symbol/fact tables as JSON, exit\n"
           "  --why <symbol>      explain a symbol's taint chains, exit\n"
           "  --rules             print the rules table and exit\n"
           "  --help              this text\n"
           "\n"
           "exit status:\n"
           "  0  clean (and, under --strict, no stale suppressions)\n"
           "  1  contract violations, or stale suppressions under\n"
           "     --strict\n"
           "  2  usage error, unreadable input, or unknown --why\n"
           "     symbol\n";
}

} // namespace lint
} // namespace khuzdul
