#include "tools/lint/analyzer.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace khuzdul
{
namespace lint
{

namespace
{

// ---------------------------------------------------------------
// Rules table.
// ---------------------------------------------------------------

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
        {"wall-clock", RuleScope::AllSources,
         "no wall-clock reads (steady_clock/system_clock/...) — "
         "modeled time comes from the cost model; host-observability "
         "sites need an annotation or allowlist entry"},
        {"prng", RuleScope::AllSources,
         "no std PRNG sources (random_device/mt19937/rand/...) — "
         "all randomness derives from support/rng.hh seeds"},
        {"unordered-iter", RuleScope::ModeledZones,
         "no std::unordered_{map,set} in modeled zones — iteration "
         "order is nondeterministic; lookup-only uses must be "
         "annotated with a reason, iterated uses replaced by sorted "
         "containers"},
        {"thread-primitive", RuleScope::ModeledZones,
         "no std threading/atomics in modeled zones outside "
         "core/parallel/ and core/service/ — units communicate only "
         "via per-unit deltas merged in unit order"},
        {"fabric-mutation", RuleScope::ModeledZones,
         "fabric ledger mutation only via Fabric::apply / "
         "CirculantScheduler::issue outside sim/fabric.cc — no raw "
         "recordTransfer/setByteCap/reset calls"},
        {"fault-modeled-state", RuleScope::RecoveryPaths,
         "fault triggers, recovery decisions and steal planning read "
         "only modeled ledger state — no Timer/hostWallNs/elapsedNs "
         "or support/timer.hh in sim/faults.*, the provider/circulant "
         "recovery paths, or core/steal/"},
        {"simd-intrinsics", RuleScope::AllSources,
         "x86 intrinsics (immintrin.h/_mm*/__m256/...) only in "
         "src/core/kernels/ — the SIMD tier is the one place where "
         "host CPU features may shape execution; everywhere else "
         "needs an annotation or allowlist entry"},
        {"header-guard", RuleScope::HeadersOnly,
         "every header opens with #pragma once or an #ifndef guard"},
        {"using-namespace-header", RuleScope::HeadersOnly,
         "no `using namespace` at header scope"},
    };
    return table;
}

// ---------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------

std::string
normalizePath(std::string path)
{
    std::replace(path.begin(), path.end(), '\\', '/');
    while (path.rfind("./", 0) == 0)
        path.erase(0, 2);
    return path;
}

/** Whether @p dir appears in @p path on component boundaries. */
bool
pathHasDir(const std::string &path, const std::string &dir)
{
    const std::string needle = dir + "/";
    std::size_t pos = path.find(needle);
    while (pos != std::string::npos) {
        if (pos == 0 || path[pos - 1] == '/')
            return true;
        pos = path.find(needle, pos + 1);
    }
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix)
        == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp")
        || endsWith(path, ".h");
}

bool
isSourcePath(const std::string &path)
{
    return isHeaderPath(path) || endsWith(path, ".cc")
        || endsWith(path, ".cpp") || endsWith(path, ".cxx");
}

/** The zones whose results feed modeled makespans and ledgers. */
bool
isModeledZone(const std::string &path)
{
    return pathHasDir(path, "src/core") || pathHasDir(path, "src/sim")
        || pathHasDir(path, "src/engines");
}

/** core/parallel/ hosts the sanctioned threading primitives. */
bool
isParallelRuntime(const std::string &path)
{
    return pathHasDir(path, "src/core/parallel");
}

/**
 * core/service/ is the multi-query scheduling runtime: like
 * core/parallel/ it may own threads/mutexes/cvs (dispatchers,
 * admission queue), because it only decides *when* sessions run.
 * Every other rule — wall-clock, prng, unordered-iter,
 * fabric-mutation — still applies in full: the service must never
 * compute a modeled value, only move deterministic per-session
 * results around.
 */
bool
isServiceRuntime(const std::string &path)
{
    return pathHasDir(path, "src/core/service");
}

/** sim/fabric.* owns the ledger and may mutate it freely. */
bool
isFabricImpl(const std::string &path)
{
    return pathHasDir(path, "src/sim")
        && (endsWith(path, "/fabric.cc") || endsWith(path, "/fabric.hh")
            || path == "fabric.cc" || path == "fabric.hh");
}

/** The TUs where fault triggers fire, recovery is priced and steal
 *  schedules are planned; host time reaching any of them would break
 *  plan (and stolen-schedule) replayability. */
bool
isRecoveryPath(const std::string &path)
{
    const auto isFile = [&](const std::string &dir,
                            const std::string &stem) {
        return pathHasDir(path, dir)
            && (endsWith(path, "/" + stem + ".cc")
                || endsWith(path, "/" + stem + ".hh"));
    };
    return isFile("src/sim", "faults") || isFile("src/core", "provider")
        || isFile("src/core", "circulant")
        || pathHasDir(path, "src/core/steal");
}

// ---------------------------------------------------------------
// Comment / literal stripping.
// ---------------------------------------------------------------

/**
 * Blank out comments and string/char literal contents of one line,
 * carrying block-comment state across lines.  Replaced bytes become
 * spaces so column numbers keep meaning.
 */
std::string
sanitizeLine(const std::string &raw, bool &in_block_comment)
{
    std::string out(raw.size(), ' ');
    std::size_t i = 0;
    while (i < raw.size()) {
        if (in_block_comment) {
            if (raw[i] == '*' && i + 1 < raw.size()
                && raw[i + 1] == '/') {
                in_block_comment = false;
                i += 2;
                continue;
            }
            ++i;
            continue;
        }
        const char c = raw[i];
        if (c == '/' && i + 1 < raw.size()) {
            if (raw[i + 1] == '/')
                break; // rest of line is a comment
            if (raw[i + 1] == '*') {
                in_block_comment = true;
                i += 2;
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            // Raw strings: skip R"( ... )" without custom delimiters.
            if (c == '"' && i > 0 && raw[i - 1] == 'R') {
                const std::size_t close = raw.find(")\"", i + 1);
                out[i] = '"';
                if (close == std::string::npos) {
                    i = raw.size();
                } else {
                    out[close + 1] = '"';
                    i = close + 2;
                }
                continue;
            }
            const char quote = c;
            out[i] = quote;
            ++i;
            while (i < raw.size()) {
                if (raw[i] == '\\') {
                    i += 2;
                    continue;
                }
                if (raw[i] == quote) {
                    out[i] = quote;
                    ++i;
                    break;
                }
                ++i;
            }
            continue;
        }
        out[i] = c;
        ++i;
    }
    // Trim trailing spaces introduced by blanking.
    while (!out.empty() && out.back() == ' ')
        out.pop_back();
    return out;
}

bool
isBlank(const std::string &s)
{
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isspace(c) != 0;
    });
}

std::string
trimCopy(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

// ---------------------------------------------------------------
// Annotation parsing: // khuzdul-lint: allow(<rule>) <reason>
// ---------------------------------------------------------------

struct Annotation
{
    std::string rule;
    std::string reason;
    int sourceLine = 0; ///< where the annotation itself sits
    bool used = false;
};

const char kAnnotationMarker[] = "khuzdul-lint:";

/**
 * Parse every annotation on @p raw (a raw source line).  Grammar
 * errors append to @p errors and yield no annotation.
 */
std::vector<Annotation>
parseAnnotations(const std::string &path, int line_no,
                 const std::string &raw, std::vector<std::string> &errors)
{
    std::vector<Annotation> result;
    static const std::regex grammar(
        R"(khuzdul-lint:\s*allow\(([A-Za-z0-9_-]+)\)[ \t]*(.*))");
    std::size_t pos = raw.find(kAnnotationMarker);
    while (pos != std::string::npos) {
        std::smatch m;
        const std::string tail = raw.substr(pos);
        std::ostringstream where;
        where << path << ":" << line_no;
        if (!std::regex_search(tail, m, grammar)
            || m.position(0) != 0) {
            errors.push_back(where.str()
                             + ": malformed khuzdul-lint annotation "
                               "(expected `khuzdul-lint: "
                               "allow(<rule>) <reason>`)");
            break;
        }
        Annotation a;
        a.rule = m[1].str();
        a.reason = trimCopy(m[2].str());
        a.sourceLine = line_no;
        if (!isRuleId(a.rule)) {
            errors.push_back(where.str() + ": annotation names unknown "
                                           "rule `" + a.rule + "`");
        } else if (a.reason.empty()) {
            errors.push_back(where.str() + ": allow(" + a.rule
                             + ") annotation is missing its written "
                               "reason");
        } else {
            result.push_back(std::move(a));
        }
        pos = raw.find(kAnnotationMarker,
                       pos + sizeof(kAnnotationMarker) - 1);
    }
    return result;
}

// ---------------------------------------------------------------
// Token rules.
// ---------------------------------------------------------------

struct TokenRule
{
    const char *id;
    std::regex pattern;
    const char *message;
    bool skipIncludeLines;
};

const std::vector<TokenRule> &
tokenRules()
{
    static const std::vector<TokenRule> rules = [] {
        std::vector<TokenRule> r;
        r.push_back(
            {"wall-clock",
             std::regex(R"(\b(steady_clock|system_clock|high_resolution_clock|clock_gettime|gettimeofday|timespec_get)\b)"),
             "wall-clock source — modeled results must not read host "
             "time; annotate genuine host-observability sites",
             false});
        r.push_back(
            {"prng",
             std::regex(R"(\b(random_device|mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux(24|48)(_base)?|knuth_b|srand|drand48|lrand48|mrand48)\b|\brand\s*\(|#\s*include\s*<random>)"),
             "std PRNG source — derive all randomness from "
             "support/rng.hh so runs are bit-exact",
             false});
        r.push_back(
            {"unordered-iter",
             std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)"),
             "unordered container in a modeled zone — iteration order "
             "is nondeterministic; use a sorted container or annotate "
             "the lookup-only use",
             true});
        r.push_back(
            {"thread-primitive",
             std::regex(R"(\bstd\s*::\s*(thread|jthread|this_thread|atomic\w*|mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable(_any)?|lock_guard|unique_lock|shared_lock|scoped_lock|future|shared_future|promise|async|counting_semaphore|binary_semaphore|barrier|latch|stop_token|call_once|once_flag)\b|\bthread\s*::\s*id\b|#\s*include\s*<(thread|atomic|mutex|shared_mutex|condition_variable|future|semaphore|barrier|latch|stop_token)>)"),
             "threading primitive in a modeled zone — host "
             "parallelism lives in core/parallel/ and the query "
             "scheduler in core/service/; units exchange state only "
             "via per-unit deltas merged in unit order",
             false});
        r.push_back(
            {"fabric-mutation",
             std::regex(R"(\b(recordTransfer|setByteCap)\s*\(|\bfabric_?\s*(\.|->)\s*reset\s*\()"),
             "direct fabric ledger mutation — route transfers through "
             "Fabric::apply or CirculantScheduler::issue",
             false});
        r.push_back(
            {"simd-intrinsics",
             std::regex(R"(#\s*include\s*<(immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|tmmintrin|nmmintrin|avxintrin|avx2intrin)\.h>|\b_mm\d*_\w+\s*\(|\b__m(128|256|512)[id]?\b|\b__builtin_ia32_\w+)"),
             "x86 intrinsic outside src/core/kernels/ — vectorized "
             "code lives in the kernel tier behind runtime feature "
             "detection so every other layer stays portable and "
             "host-invariant",
             false});
        r.push_back(
            {"fault-modeled-state",
             std::regex(R"(\b(hostWallNs|elapsedNs|elapsedSeconds|Timer)\b|\btimer\.hh\b)"),
             "host-time symbol in a fault/recovery path — fault "
             "triggers and retry pricing must read only modeled "
             "ledger state (link ordinals, the modeled clock) so "
             "plans replay bit-identically",
             false});
        return r;
    }();
    return rules;
}

bool
ruleAppliesTo(const std::string &rule, const std::string &path)
{
    if (rule == "unordered-iter")
        return isModeledZone(path);
    if (rule == "thread-primitive")
        return isModeledZone(path) && !isParallelRuntime(path)
            && !isServiceRuntime(path);
    if (rule == "fabric-mutation")
        return isModeledZone(path) && !isFabricImpl(path);
    if (rule == "fault-modeled-state")
        return isRecoveryPath(path);
    if (rule == "simd-intrinsics")
        return !pathHasDir(path, "src/core/kernels");
    return true; // wall-clock, prng: every scanned file
}

bool
isIncludeLine(const std::string &code)
{
    const std::string t = trimCopy(code);
    return t.rfind("#include", 0) == 0
        || (t.rfind("#", 0) == 0
            && trimCopy(t.substr(1)).rfind("include", 0) == 0);
}

// ---------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
suppressionName(SuppressionKind kind)
{
    switch (kind) {
    case SuppressionKind::None:
        return "none";
    case SuppressionKind::Annotation:
        return "annotation";
    case SuppressionKind::Allowlist:
        return "allowlist";
    }
    return "none";
}

} // namespace

// ---------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return ruleTable();
}

bool
isRuleId(const std::string &id)
{
    for (const RuleInfo &r : ruleTable())
        if (r.id == id)
            return true;
    return false;
}

std::size_t
Report::violations() const
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding &f) { return f.live(); }));
}

std::size_t
Report::suppressed() const
{
    return findings.size() - violations();
}

bool
Report::passes(bool strict) const
{
    if (violations() > 0 || !errors.empty())
        return false;
    if (strict && !stale.empty())
        return false;
    return true;
}

std::vector<AllowlistEntry>
parseAllowlist(const std::string &content, const std::string &file,
               std::vector<std::string> &errors)
{
    std::vector<AllowlistEntry> entries;
    std::istringstream in(content);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string t = trimCopy(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::istringstream fields(t);
        AllowlistEntry e;
        fields >> e.path >> e.rule;
        std::getline(fields, e.reason);
        e.reason = trimCopy(e.reason);
        e.line = line_no;
        std::ostringstream where;
        where << file << ":" << line_no;
        if (e.path.empty() || e.rule.empty()) {
            errors.push_back(where.str()
                             + ": allowlist line needs `<path> <rule> "
                               "<reason>`");
            continue;
        }
        if (!isRuleId(e.rule)) {
            errors.push_back(where.str() + ": allowlist names unknown "
                                           "rule `" + e.rule + "`");
            continue;
        }
        if (e.reason.empty()) {
            errors.push_back(where.str() + ": allowlist entry for "
                             + e.path + " is missing its written "
                                        "reason");
            continue;
        }
        e.path = normalizePath(e.path);
        entries.push_back(std::move(e));
    }
    return entries;
}

namespace
{

/** Whether allowlist @p entry covers @p path (anchored suffix). */
bool
allowlistCovers(const AllowlistEntry &entry, const std::string &path)
{
    if (path == entry.path)
        return true;
    return endsWith(path, "/" + entry.path);
}

} // namespace

void
analyzeSource(const std::string &raw_path, const std::string &content,
              std::vector<AllowlistEntry> *allowlist, Report &out)
{
    const std::string path = normalizePath(raw_path);
    ++out.filesScanned;

    std::vector<std::string> lines;
    {
        std::istringstream in(content);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }

    // Pass 1: sanitize (comments/strings blanked) and collect
    // annotations keyed by the line they shield: their own line if
    // it carries code, otherwise the next line.
    std::vector<std::string> code(lines.size());
    std::map<int, std::vector<Annotation>> shields;
    bool in_block = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        code[i] = sanitizeLine(lines[i], in_block);
        auto annotations = parseAnnotations(
            path, static_cast<int>(i + 1), lines[i], out.errors);
        if (annotations.empty())
            continue;
        const int target = isBlank(code[i]) ? static_cast<int>(i + 2)
                                            : static_cast<int>(i + 1);
        auto &bucket = shields[target];
        bucket.insert(bucket.end(), annotations.begin(),
                      annotations.end());
    }

    std::vector<Finding> found;
    const auto emit = [&](int line_no, const std::string &rule,
                          const std::string &message) {
        Finding f;
        f.file = path;
        f.line = line_no;
        f.rule = rule;
        f.message = message;
        f.snippet = line_no >= 1
                && line_no <= static_cast<int>(lines.size())
            ? trimCopy(lines[static_cast<std::size_t>(line_no - 1)])
            : std::string();
        found.push_back(std::move(f));
    };

    // Header hygiene.
    if (isHeaderPath(path)) {
        int first_code = 0;
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (!isBlank(code[i])) {
                first_code = static_cast<int>(i + 1);
                break;
            }
        }
        const std::string opening = first_code == 0
            ? std::string()
            : trimCopy(code[static_cast<std::size_t>(first_code - 1)]);
        const bool guarded = opening.rfind("#pragma once", 0) == 0
            || opening.rfind("#ifndef", 0) == 0;
        if (!guarded)
            emit(first_code == 0 ? 1 : first_code, "header-guard",
                 "header must open with #pragma once or an #ifndef "
                 "include guard");
        static const std::regex using_ns(R"(\busing\s+namespace\b)");
        for (std::size_t i = 0; i < code.size(); ++i)
            if (std::regex_search(code[i], using_ns))
                emit(static_cast<int>(i + 1), "using-namespace-header",
                     "`using namespace` in a header leaks into every "
                     "includer");
    }

    // Token rules.
    for (const TokenRule &rule : tokenRules()) {
        if (!ruleAppliesTo(rule.id, path))
            continue;
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (code[i].empty())
                continue;
            if (rule.skipIncludeLines && isIncludeLine(code[i]))
                continue;
            if (std::regex_search(code[i], rule.pattern))
                emit(static_cast<int>(i + 1), rule.id, rule.message);
        }
    }

    // Suppression: per-line annotation first, then the allowlist.
    for (Finding &f : found) {
        bool done = false;
        const auto it = shields.find(f.line);
        if (it != shields.end()) {
            for (Annotation &a : it->second) {
                if (a.rule == f.rule) {
                    f.suppression = SuppressionKind::Annotation;
                    f.reason = a.reason;
                    a.used = true;
                    done = true;
                    break;
                }
            }
        }
        if (!done && allowlist != nullptr) {
            for (AllowlistEntry &e : *allowlist) {
                if (e.rule == f.rule && allowlistCovers(e, f.file)) {
                    f.suppression = SuppressionKind::Allowlist;
                    f.reason = e.reason;
                    e.used = true;
                    break;
                }
            }
        }
        out.findings.push_back(std::move(f));
    }

    // Annotations that shielded nothing are stale (they either
    // outlived their finding or target the wrong line).
    for (const auto &[target, bucket] : shields) {
        (void)target;
        for (const Annotation &a : bucket) {
            if (a.used)
                continue;
            StaleSuppression s;
            s.file = path;
            s.line = a.sourceLine;
            s.rule = a.rule;
            s.detail = "allow(" + a.rule
                + ") annotation suppresses nothing";
            out.stale.push_back(std::move(s));
        }
    }
}

Report
analyzePaths(const std::vector<std::string> &paths,
             std::vector<AllowlistEntry> allowlist,
             const std::string &allowlist_file)
{
    namespace fs = std::filesystem;
    Report report;

    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (!it->is_regular_file())
                    continue;
                const std::string f =
                    normalizePath(it->path().generic_string());
                if (isSourcePath(f))
                    files.push_back(f);
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(normalizePath(p));
        } else {
            report.errors.push_back("cannot open path: " + p);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            report.errors.push_back("cannot read file: " + file);
            continue;
        }
        std::ostringstream content;
        content << in.rdbuf();
        analyzeSource(file, content.str(), &allowlist, report);
    }

    for (const AllowlistEntry &e : allowlist) {
        if (e.used)
            continue;
        StaleSuppression s;
        s.file = allowlist_file.empty() ? "<allowlist>" : allowlist_file;
        s.line = e.line;
        s.rule = e.rule;
        s.detail = "allowlist entry `" + e.path + " " + e.rule
            + "` matches no finding";
        report.stale.push_back(std::move(s));
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return report;
}

std::string
toJson(const Report &report, bool strict)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"tool\": \"khuzdul_lint\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"strict\": " << (strict ? "true" : "false") << ",\n";
    out << "  \"files_scanned\": " << report.filesScanned << ",\n";
    out << "  \"violations\": " << report.violations() << ",\n";
    out << "  \"suppressed\": " << report.suppressed() << ",\n";
    out << "  \"passed\": " << (report.passes(strict) ? "true" : "false")
        << ",\n";
    out << "  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\", \"snippet\": \""
            << jsonEscape(f.snippet) << "\", \"suppression\": \""
            << suppressionName(f.suppression) << "\", \"reason\": \""
            << jsonEscape(f.reason) << "\"}";
    }
    out << (report.findings.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"stale_suppressions\": [";
    for (std::size_t i = 0; i < report.stale.size(); ++i) {
        const StaleSuppression &s = report.stale[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": \"" << jsonEscape(s.file)
            << "\", \"line\": " << s.line << ", \"rule\": \""
            << jsonEscape(s.rule) << "\", \"detail\": \""
            << jsonEscape(s.detail) << "\"}";
    }
    out << (report.stale.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"errors\": [";
    for (std::size_t i = 0; i < report.errors.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n");
        out << "    \"" << jsonEscape(report.errors[i]) << "\"";
    }
    out << (report.errors.empty() ? "]" : "\n  ]") << "\n";
    out << "}\n";
    return out.str();
}

std::string
toText(const Report &report, bool strict)
{
    std::ostringstream out;
    for (const Finding &f : report.findings) {
        if (!f.live())
            continue;
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
        if (!f.snippet.empty())
            out << "    " << f.snippet << "\n";
    }
    for (const std::string &e : report.errors)
        out << "error: " << e << "\n";
    if (strict) {
        for (const StaleSuppression &s : report.stale)
            out << s.file << ":" << s.line << ": [stale] " << s.detail
                << "\n";
    }
    out << "khuzdul_lint: " << report.filesScanned << " files, "
        << report.violations() << " violation(s), "
        << report.suppressed() << " suppressed";
    if (strict)
        out << ", " << report.stale.size() << " stale suppression(s)";
    out << " — " << (report.passes(strict) ? "PASS" : "FAIL") << "\n";
    return out.str();
}

} // namespace lint
} // namespace khuzdul
