/**
 * @file
 * Call-edge resolution and architecture layering for khuzdul_lint
 * (DESIGN.md §8.4/§8.5).  Consumes the Program built by the
 * extraction pass (symbols.hh) and produces:
 *
 *  - the resolved project include graph and its transitive closure,
 *  - call edges between extracted functions, resolved by
 *    qualified-name suffix matching restricted to each caller's
 *    include closure (with sibling-header proxies so a .cc's
 *    definitions are reachable through the header that declares
 *    them), and
 *  - layering violations: the include DAG must respect
 *    support -> graph/sim -> core -> engines -> apps/tools, and
 *    must stay acyclic.
 */

#ifndef KHUZDUL_TOOLS_LINT_CALLGRAPH_HH
#define KHUZDUL_TOOLS_LINT_CALLGRAPH_HH

#include <string>
#include <vector>

#include "tools/lint/symbols.hh"

namespace khuzdul
{
namespace lint
{

/** One resolved caller -> callee edge (first call site wins). */
struct CallEdge
{
    int caller = -1; ///< index into Program::functions
    int callee = -1;
    int line = 0; ///< call-site line in the caller's file
};

/** The resolved call graph plus the include closure it used. */
struct CallGraph
{
    std::vector<CallEdge> edges; ///< sorted by (caller, callee)
    /** Per function: indices into edges where it is the caller. */
    std::vector<std::vector<int>> outEdges;
    /** Per function: indices into edges where it is the callee. */
    std::vector<std::vector<int>> inEdges;
    /** Per file: file indices visible through transitive includes
     *  (always contains the file itself). */
    std::vector<std::vector<int>> includeClosure;
};

/** Resolve call sites into edges.  Deterministic: candidates are
 *  ranked by (file, line) and edges deduplicated per pair. */
CallGraph buildCallGraph(const Program &program);

/** One architecture-layering finding (rule id "layering"). */
struct LayerViolation
{
    std::string file;
    int line = 0;
    std::string message;
};

/**
 * Layer rank of a path or include target: support=0,
 * graph/sim/pattern=1, core=2, engines=3, apps/tools=4,
 * bench/tests/examples=5.  Returns -1 when the path belongs to no
 * known layer (external or unanchored), which disables the check.
 */
int layerRank(const std::string &path);

/** The layer component name used in messages ("core", ...). */
std::string layerName(const std::string &path);

/** Check every include edge against the layer order and the include
 *  graph for cycles.  Sorted by (file, line). */
std::vector<LayerViolation> checkLayering(const Program &program);

} // namespace lint
} // namespace khuzdul

#endif // KHUZDUL_TOOLS_LINT_CALLGRAPH_HH
