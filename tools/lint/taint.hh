/**
 * @file
 * Transitive determinism taint for khuzdul_lint (DESIGN.md §8.4).
 *
 * Every function body is seeded with determinism *facts* — the same
 * token patterns the per-line rules use (wall-clock, prng,
 * unordered-iter, thread-primitive, fabric-mutation,
 * fault-modeled-state) — and each fact is propagated backwards over
 * the resolved call graph.  A finding is raised when the taint
 * frontier reaches a function whose file sits inside that fact's
 * restricted zone at one or more call hops from the seed: the chain
 * `core/extender -> support/format -> std::chrono` the per-line
 * scanner can never see.
 *
 * Seeding is zone-aware: a fact site whose line carries a reviewed
 * `khuzdul-lint: allow(<rule>)` annotation *inside the fact's
 * restricted zone* is a sanctioned carve-out and does not seed, as
 * are the structural carve-outs (core/parallel + core/service for
 * thread primitives, sim/fabric.* for fabric mutation).  Annotations
 * outside the restricted zone never block seeding — a host-only
 * claim on a support helper is exactly what this pass verifies.
 *
 * Propagation stops at the first restricted-zone function reached
 * (the taint frontier): callers of an already-flagged function are
 * not flagged again, so one leaky helper yields one finding per
 * entry point instead of a cascade.
 */

#ifndef KHUZDUL_TOOLS_LINT_TAINT_HH
#define KHUZDUL_TOOLS_LINT_TAINT_HH

#include <map>
#include <string>
#include <vector>

#include "tools/lint/callgraph.hh"
#include "tools/lint/symbols.hh"

namespace khuzdul
{
namespace lint
{

/** Taint rule id for a base fact ("wall-clock" ->
 *  "taint-wall-clock", "fault-modeled-state" -> "taint-host-time"). */
std::string taintRuleFor(const std::string &fact);

/** Whether @p fact is restricted in the file at @p path (the zone
 *  where the matching per-line rule fires). */
bool inRestrictedZone(const std::string &fact,
                      const std::string &path);

/** One transitive violation: a restricted-zone function reaching a
 *  fact through >= 1 call hops. */
struct TaintFinding
{
    std::string rule; ///< "taint-wall-clock", ...
    std::string fact; ///< base rule id
    std::string file; ///< the flagged function's file
    int line = 0;     ///< first-hop call-site line in that file
    std::string function;           ///< qualified name
    std::vector<std::string> chain; ///< "qual (file:line)" hops
    std::string message;
};

/** Per-fact BFS state, kept so --why can replay chains. */
struct FactTaint
{
    std::string fact;
    std::vector<int> dist;       ///< -1 untainted, 0 seed
    std::vector<int> parent;     ///< next hop toward the seed
    std::vector<int> parentLine; ///< call-site line in this fn
    std::vector<int> seedLine;   ///< fact line for dist-0 fns
};

struct TaintResult
{
    std::vector<TaintFinding> findings; ///< sorted (file, line)
    std::vector<FactTaint> perFact;     ///< factPatterns() order
    int seedCount = 0; ///< unsanctioned seeds across all facts
};

/** Seed and propagate every fact.  Requires the analyzer to have
 *  filled SourceFile::allowedRules first. */
TaintResult propagateTaint(const Program &program,
                           const CallGraph &graph);

/** The chain from function @p fn back to its seed for @p fact,
 *  formatted "qual (file:line)" per hop; empty when untainted. */
std::vector<std::string> chainFor(const Program &program,
                                  const FactTaint &taint, int fn);

/**
 * Human-readable taint explanation for a symbol (exact qualified
 * name, or any function whose qualified name ends with
 * "::<symbol>").  Sets @p found to false when no function matches.
 */
std::string whyText(const Program &program,
                    const TaintResult &taint,
                    const std::string &symbol, bool &found);

/** The --facts dump: schema-v2 JSON with the symbol table summary,
 *  per-fact seed/taint counts, seed sites and live chains.  Built
 *  only from sorted state so back-to-back runs are byte-identical. */
std::string factsJson(const Program &program, const CallGraph &graph,
                      const TaintResult &taint);

} // namespace lint
} // namespace khuzdul

#endif // KHUZDUL_TOOLS_LINT_TAINT_HH
