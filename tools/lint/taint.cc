#include "tools/lint/taint.hh"

#include <algorithm>
#include <deque>
#include <sstream>

namespace khuzdul
{
namespace lint
{

namespace
{

std::string
factLabel(const std::string &fact)
{
    if (fact == "wall-clock")
        return "a wall-clock source";
    if (fact == "prng")
        return "a PRNG source";
    if (fact == "unordered-iter")
        return "unordered-container iteration";
    if (fact == "thread-primitive")
        return "a threading primitive";
    if (fact == "fabric-mutation")
        return "a raw fabric mutation";
    if (fact == "fault-modeled-state")
        return "host-timing state";
    return fact;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Whether this fact site is a reviewed or structural carve-out
 *  that must not seed taint. */
bool
sanctionedSeed(const std::string &fact, const SourceFile &file,
               const int line)
{
    if (fact == "thread-primitive"
        && (isParallelRuntime(file.path)
            || isServiceRuntime(file.path)))
        return true;
    if (fact == "fabric-mutation" && isFabricImpl(file.path))
        return true;
    // A per-line annotation sanctions a seed only inside the fact's
    // own restricted zone: there it names a reviewed in-zone
    // carve-out.  Outside the zone ("host-only" claims on support
    // helpers) the cross-TU pass is exactly the verifier of that
    // claim, so the seed stays armed.
    if (inRestrictedZone(fact, file.path)) {
        const auto it = file.allowedRules.find(line);
        if (it != file.allowedRules.end()
            && it->second.count(fact) != 0)
            return true;
    }
    return false;
}

} // namespace

std::string
taintRuleFor(const std::string &fact)
{
    if (fact == "fault-modeled-state")
        return "taint-host-time";
    return "taint-" + fact;
}

bool
inRestrictedZone(const std::string &fact, const std::string &path)
{
    if (fact == "thread-primitive")
        return isModeledZone(path) && !isParallelRuntime(path)
            && !isServiceRuntime(path);
    if (fact == "fabric-mutation")
        return isModeledZone(path) && !isFabricImpl(path);
    if (fact == "fault-modeled-state")
        return isRecoveryPath(path);
    return isModeledZone(path);
}

std::vector<std::string>
chainFor(const Program &program, const FactTaint &taint, int fn)
{
    std::vector<std::string> chain;
    if (fn < 0
        || taint.dist[static_cast<std::size_t>(fn)] < 0)
        return chain;
    int at = fn;
    while (at >= 0) {
        const auto idx = static_cast<std::size_t>(at);
        const FunctionDef &def = program.functions[idx];
        const int line = taint.parent[idx] >= 0
            ? taint.parentLine[idx]
            : taint.seedLine[idx];
        chain.push_back(def.qualified + " (" + def.file + ":"
                        + std::to_string(line) + ")");
        at = taint.parent[idx];
    }
    return chain;
}

TaintResult
propagateTaint(const Program &program, const CallGraph &graph)
{
    TaintResult result;
    const std::size_t nFns = program.functions.size();

    std::map<std::string, const SourceFile *> filesByPath;
    for (const SourceFile &file : program.files)
        filesByPath[file.path] = &file;

    for (const auto &[fact, pattern] : factPatterns()) {
        (void)pattern;
        FactTaint taint;
        taint.fact = fact;
        taint.dist.assign(nFns, -1);
        taint.parent.assign(nFns, -1);
        taint.parentLine.assign(nFns, 0);
        taint.seedLine.assign(nFns, 0);

        std::deque<int> queue;
        for (std::size_t i = 0; i < nFns; ++i) {
            const FunctionDef &fn = program.functions[i];
            const auto fileIt = filesByPath.find(fn.file);
            if (fileIt == filesByPath.end())
                continue;
            for (const FactSite &site : fn.facts) {
                if (site.fact != fact)
                    continue;
                if (sanctionedSeed(fact, *fileIt->second,
                                   site.line))
                    continue;
                taint.dist[i] = 0;
                taint.seedLine[i] = site.line;
                ++result.seedCount;
                // Seeds inside the restricted zone are already
                // direct per-line findings; they are their own
                // frontier and do not propagate further.
                if (!inRestrictedZone(fact, fn.file))
                    queue.push_back(static_cast<int>(i));
                break;
            }
        }

        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (const int edgeIdx :
                 graph.inEdges[static_cast<std::size_t>(u)]) {
                const CallEdge &edge
                    = graph.edges[static_cast<std::size_t>(edgeIdx)];
                const auto c
                    = static_cast<std::size_t>(edge.caller);
                if (taint.dist[c] >= 0)
                    continue;
                taint.dist[c]
                    = taint.dist[static_cast<std::size_t>(u)] + 1;
                taint.parent[c] = edge.callee;
                taint.parentLine[c] = edge.line;
                const FunctionDef &caller = program.functions[c];
                if (inRestrictedZone(fact, caller.file)) {
                    // The taint frontier: report and stop here.
                    TaintFinding finding;
                    finding.rule = taintRuleFor(fact);
                    finding.fact = fact;
                    finding.file = caller.file;
                    finding.line = edge.line;
                    finding.function = caller.qualified;
                    finding.chain = chainFor(
                        program, taint, static_cast<int>(c));
                    std::string joined;
                    for (const std::string &hop : finding.chain) {
                        if (!joined.empty())
                            joined += " -> ";
                        joined += hop;
                    }
                    finding.message = "'" + caller.qualified
                        + "' reaches " + factLabel(fact)
                        + " through call chain: " + joined;
                    result.findings.push_back(std::move(finding));
                } else {
                    queue.push_back(static_cast<int>(c));
                }
            }
        }
        result.perFact.push_back(std::move(taint));
    }

    std::sort(result.findings.begin(), result.findings.end(),
              [](const TaintFinding &a, const TaintFinding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.function < b.function;
              });
    return result;
}

std::string
whyText(const Program &program, const TaintResult &taint,
        const std::string &symbol, bool &found)
{
    std::ostringstream out;
    found = false;
    for (std::size_t i = 0; i < program.functions.size(); ++i) {
        const FunctionDef &fn = program.functions[i];
        if (fn.qualified != symbol
            && !endsWith(fn.qualified, "::" + symbol))
            continue;
        found = true;
        out << fn.qualified << " (" << fn.file << ":" << fn.line
            << ")\n";
        bool anyTaint = false;
        for (const FactTaint &fact : taint.perFact) {
            const int dist = fact.dist[i];
            if (dist < 0)
                continue;
            anyTaint = true;
            if (dist == 0) {
                out << "  " << fact.fact << ": direct seed at "
                    << fn.file << ":" << fact.seedLine[i] << "\n";
                continue;
            }
            out << "  " << fact.fact << ": tainted (" << dist
                << (dist == 1 ? " hop" : " hops") << ")\n";
            for (const std::string &hop :
                 chainFor(program, fact, static_cast<int>(i)))
                out << "    -> " << hop << "\n";
        }
        if (!anyTaint)
            out << "  clean: no determinism facts reachable\n";
    }
    return out.str();
}

std::string
factsJson(const Program &program, const CallGraph &graph,
          const TaintResult &taint)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema_version\": 2,\n";
    out << "  \"tool\": \"khuzdul_lint --facts\",\n";
    out << "  \"files\": " << program.files.size() << ",\n";
    out << "  \"functions\": " << program.functions.size() << ",\n";
    out << "  \"call_edges\": " << graph.edges.size() << ",\n";

    out << "  \"facts\": [";
    bool firstFact = true;
    for (const FactTaint &fact : taint.perFact) {
        int seeds = 0;
        int tainted = 0;
        for (const int d : fact.dist) {
            if (d == 0)
                ++seeds;
            else if (d > 0)
                ++tainted;
        }
        int findings = 0;
        for (const TaintFinding &f : taint.findings)
            if (f.fact == fact.fact)
                ++findings;
        out << (firstFact ? "\n" : ",\n");
        firstFact = false;
        out << "    {\"fact\": \"" << jsonEscape(fact.fact)
            << "\", \"rule\": \"" << jsonEscape(taintRuleFor(fact.fact))
            << "\", \"seeds\": " << seeds
            << ", \"tainted\": " << tainted
            << ", \"findings\": " << findings << "}";
    }
    out << "\n  ],\n";

    out << "  \"seeds\": [";
    bool firstSeed = true;
    for (const FactTaint &fact : taint.perFact)
        for (std::size_t i = 0; i < fact.dist.size(); ++i) {
            if (fact.dist[i] != 0)
                continue;
            const FunctionDef &fn = program.functions[i];
            out << (firstSeed ? "\n" : ",\n");
            firstSeed = false;
            out << "    {\"fact\": \"" << jsonEscape(fact.fact)
                << "\", \"function\": \""
                << jsonEscape(fn.qualified) << "\", \"file\": \""
                << jsonEscape(fn.file)
                << "\", \"line\": " << fact.seedLine[i] << "}";
        }
    out << "\n  ],\n";

    out << "  \"chains\": [";
    bool firstChain = true;
    for (const TaintFinding &f : taint.findings) {
        out << (firstChain ? "\n" : ",\n");
        firstChain = false;
        out << "    {\"rule\": \"" << jsonEscape(f.rule)
            << "\", \"function\": \"" << jsonEscape(f.function)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"chain\": [";
        for (std::size_t h = 0; h < f.chain.size(); ++h) {
            if (h != 0)
                out << ", ";
            out << "\"" << jsonEscape(f.chain[h]) << "\"";
        }
        out << "]}";
    }
    out << "\n  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace lint
} // namespace khuzdul
