#include "tools/lint/callgraph.hh"

#include <algorithm>
#include <map>
#include <set>

namespace khuzdul
{
namespace lint
{

namespace
{

std::vector<std::string>
componentsOf(const std::string &qualified)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = qualified.find("::", start);
        if (pos == std::string::npos) {
            out.push_back(qualified.substr(start));
            return out;
        }
        out.push_back(qualified.substr(start, pos - start));
        start = pos + 2;
    }
}

/** Whether @p token's components are a trailing run of
 *  @p candidate's (qualified-suffix match). */
bool
suffixMatch(const std::vector<std::string> &candidate,
            const std::vector<std::string> &token)
{
    if (token.size() > candidate.size())
        return false;
    return std::equal(token.rbegin(), token.rend(),
                      candidate.rbegin());
}

/** Resolve an include target ("core/engine.hh") to a scanned file
 *  index by /-anchored suffix match, or -1 when external. */
int
resolveInclude(const std::string &target,
               const std::vector<SourceFile> &files)
{
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string &path = files[i].path;
        if (path == target || endsWith(path, "/" + target))
            return static_cast<int>(i);
    }
    return -1;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t pos = path.rfind('/');
    return pos == std::string::npos ? std::string() :
                                      path.substr(0, pos);
}

std::string
stemOf(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    const std::size_t base = slash == std::string::npos ? 0 :
                                                          slash + 1;
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || dot < base)
        return path.substr(base);
    return path.substr(base, dot - base);
}

struct IncludeEdges
{
    /** Per file: (target file index, include line). */
    std::vector<std::vector<std::pair<int, int>>> adjacency;
    /** Per file: reachable file indices, including itself. */
    std::vector<std::vector<int>> closure;
};

IncludeEdges
resolveIncludeGraph(const Program &program)
{
    const std::size_t n = program.files.size();
    IncludeEdges out;
    out.adjacency.resize(n);
    out.closure.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        for (const IncludeSite &inc : program.files[i].includes) {
            const int target
                = resolveInclude(inc.target, program.files);
            if (target >= 0)
                out.adjacency[i].push_back({target, inc.line});
        }
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<bool> seen(n, false);
        std::vector<int> work = {static_cast<int>(i)};
        seen[i] = true;
        while (!work.empty()) {
            const int at = work.back();
            work.pop_back();
            out.closure[i].push_back(at);
            for (const auto &[next, line] :
                 out.adjacency[static_cast<std::size_t>(at)]) {
                (void)line;
                if (!seen[static_cast<std::size_t>(next)]) {
                    seen[static_cast<std::size_t>(next)] = true;
                    work.push_back(next);
                }
            }
        }
        std::sort(out.closure[i].begin(), out.closure[i].end());
    }
    return out;
}

} // namespace

CallGraph
buildCallGraph(const Program &program)
{
    CallGraph graph;
    const std::size_t nFiles = program.files.size();
    const std::size_t nFns = program.functions.size();
    IncludeEdges inc = resolveIncludeGraph(program);
    graph.includeClosure = inc.closure;

    // A .cc's definitions are reachable through the header that
    // declares them: the sibling header with the same stem if
    // scanned, otherwise any header in the same directory (e.g.
    // core/kernels/merge.cc is declared by core/kernels/kernels.hh).
    std::vector<std::vector<int>> proxies(nFiles);
    for (std::size_t g = 0; g < nFiles; ++g) {
        const std::string &path = program.files[g].path;
        if (isHeaderPath(path))
            continue;
        const std::string dir = dirOf(path);
        const std::string stem = stemOf(path);
        std::vector<int> sameDir;
        int sibling = -1;
        for (std::size_t h = 0; h < nFiles; ++h) {
            const std::string &other = program.files[h].path;
            if (!isHeaderPath(other) || dirOf(other) != dir)
                continue;
            sameDir.push_back(static_cast<int>(h));
            if (stemOf(other) == stem)
                sibling = static_cast<int>(h);
        }
        proxies[g] = sibling >= 0 ? std::vector<int>{sibling} :
                                    sameDir;
    }

    // Per caller file: which files' external-linkage definitions
    // are visible (closure, plus sources proxied by a closed-over
    // header).
    std::vector<std::vector<bool>> visible(
        nFiles, std::vector<bool>(nFiles, false));
    for (std::size_t f = 0; f < nFiles; ++f) {
        for (const int g : inc.closure[f])
            visible[f][static_cast<std::size_t>(g)] = true;
        for (std::size_t g = 0; g < nFiles; ++g) {
            if (visible[f][g])
                continue;
            for (const int proxy : proxies[g])
                if (visible[f][static_cast<std::size_t>(proxy)]) {
                    visible[f][g] = true;
                    break;
                }
        }
    }

    std::map<std::string, int> fileIndex;
    for (std::size_t i = 0; i < nFiles; ++i)
        fileIndex[program.files[i].path] = static_cast<int>(i);

    // Candidate callees bucketed by the unqualified name.
    std::map<std::string, std::vector<int>> byName;
    std::vector<std::vector<std::string>> fnComponents(nFns);
    for (std::size_t i = 0; i < nFns; ++i) {
        fnComponents[i]
            = componentsOf(program.functions[i].qualified);
        byName[fnComponents[i].back()].push_back(
            static_cast<int>(i));
    }

    std::set<std::pair<int, int>> seenEdge;
    for (std::size_t caller = 0; caller < nFns; ++caller) {
        const FunctionDef &fn = program.functions[caller];
        const auto fileIt = fileIndex.find(fn.file);
        if (fileIt == fileIndex.end())
            continue;
        const std::size_t callerFile
            = static_cast<std::size_t>(fileIt->second);
        for (const CallSite &call : fn.calls) {
            const std::vector<std::string> tokenComps
                = componentsOf(call.token);
            const auto bucket = byName.find(tokenComps.back());
            if (bucket == byName.end())
                continue;
            for (const int callee : bucket->second) {
                if (callee == static_cast<int>(caller)
                    && call.line == fn.line)
                    continue; // the signature's own name token
                const FunctionDef &target = program.functions
                    [static_cast<std::size_t>(callee)];
                if (call.member && !target.method)
                    continue;
                if (!suffixMatch(
                        fnComponents[static_cast<std::size_t>(
                            callee)],
                        tokenComps))
                    continue;
                const auto targetIt = fileIndex.find(target.file);
                if (targetIt == fileIndex.end())
                    continue;
                const std::size_t targetFile
                    = static_cast<std::size_t>(targetIt->second);
                if (target.anonNamespace) {
                    if (targetFile != callerFile)
                        continue;
                } else if (!visible[callerFile][targetFile]) {
                    continue;
                }
                if (seenEdge
                        .insert({static_cast<int>(caller), callee})
                        .second)
                    graph.edges.push_back({static_cast<int>(caller),
                                           callee, call.line});
            }
        }
    }

    std::sort(graph.edges.begin(), graph.edges.end(),
              [](const CallEdge &a, const CallEdge &b) {
                  if (a.caller != b.caller)
                      return a.caller < b.caller;
                  return a.callee < b.callee;
              });
    graph.outEdges.resize(nFns);
    graph.inEdges.resize(nFns);
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
        graph.outEdges[static_cast<std::size_t>(
                           graph.edges[e].caller)]
            .push_back(static_cast<int>(e));
        graph.inEdges[static_cast<std::size_t>(
                          graph.edges[e].callee)]
            .push_back(static_cast<int>(e));
    }
    return graph;
}

namespace
{

/** The component that names a path's layer, or "" when unknown. */
std::string
layerComponent(const std::string &rawPath)
{
    const std::string path = normalizePath(rawPath);
    std::vector<std::string> comps;
    std::size_t start = 0;
    while (start <= path.size()) {
        const std::size_t pos = path.find('/', start);
        if (pos == std::string::npos) {
            comps.push_back(path.substr(start));
            break;
        }
        comps.push_back(path.substr(start, pos - start));
        start = pos + 1;
    }
    // Inside src/: the layer is the component after "src".
    for (std::size_t i = 0; i + 1 < comps.size(); ++i)
        if (comps[i] == "src")
            return comps[i + 1];
    static const std::set<std::string> known
        = {"support", "graph",   "sim",   "pattern", "core",
           "engines", "apps",    "tools", "bench",   "tests",
           "examples"};
    // Include targets are src-relative ("core/engine.hh"); repo
    // paths outside src/ ("tools/lint/main.cc") lead with their
    // layer.  Search leading components so absolute scan roots
    // ("/root/repo/tools/...") still classify.
    for (std::size_t i = 0; i + 1 < comps.size(); ++i)
        if (known.count(comps[i]) != 0)
            return comps[i];
    return std::string();
}

int
rankOfComponent(const std::string &comp)
{
    static const std::map<std::string, int> ranks = {
        {"support", 0}, {"graph", 1},   {"sim", 1},  {"pattern", 1},
        {"core", 2},    {"engines", 3}, {"apps", 4}, {"tools", 4},
        {"bench", 5},   {"tests", 5},   {"examples", 5},
    };
    const auto it = ranks.find(comp);
    return it == ranks.end() ? -1 : it->second;
}

} // namespace

int
layerRank(const std::string &path)
{
    return rankOfComponent(layerComponent(path));
}

std::string
layerName(const std::string &path)
{
    return layerComponent(path);
}

std::vector<LayerViolation>
checkLayering(const Program &program)
{
    std::vector<LayerViolation> out;
    const IncludeEdges inc = resolveIncludeGraph(program);
    const std::size_t n = program.files.size();

    for (std::size_t i = 0; i < n; ++i) {
        const SourceFile &file = program.files[i];
        const int from = layerRank(file.path);
        if (from < 0)
            continue;
        for (const IncludeSite &site : file.includes) {
            const int to = layerRank(site.target);
            if (to < 0 || from >= to)
                continue;
            out.push_back(
                {file.path, site.line,
                 "layer '" + layerName(file.path) + "' includes \""
                     + site.target + "\" from higher layer '"
                     + layerName(site.target)
                     + "' (allowed order: support -> graph/sim -> "
                       "core -> engines -> apps/tools)"});
        }
    }

    // The include graph must be acyclic regardless of layers.
    std::vector<int> color(n, 0); // 0 white, 1 gray, 2 black
    std::vector<int> path;
    std::set<std::vector<int>> reportedCycles;
    const auto dfs = [&](auto &&self, const std::size_t at) -> void {
        color[at] = 1;
        path.push_back(static_cast<int>(at));
        for (const auto &[next, line] : inc.adjacency[at]) {
            const auto idx = static_cast<std::size_t>(next);
            if (color[idx] == 0) {
                self(self, idx);
            } else if (color[idx] == 1) {
                const auto begin = std::find(path.begin(),
                                             path.end(), next);
                std::vector<int> cycle(begin, path.end());
                std::vector<int> key = cycle;
                std::sort(key.begin(), key.end());
                if (reportedCycles.insert(key).second) {
                    std::string names;
                    for (const int f : cycle) {
                        names += program
                                     .files[static_cast<std::size_t>(
                                         f)]
                                     .path;
                        names += " -> ";
                    }
                    names += program.files[idx].path;
                    out.push_back({program.files[at].path, line,
                                   "include cycle: " + names});
                }
            }
        }
        path.pop_back();
        color[at] = 2;
    };
    for (std::size_t i = 0; i < n; ++i)
        if (color[i] == 0)
            dfs(dfs, i);

    std::sort(out.begin(), out.end(),
              [](const LayerViolation &a, const LayerViolation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return out;
}

} // namespace lint
} // namespace khuzdul
