/**
 * @file
 * khuzdul_lint — the static analyzer that enforces the determinism
 * contract (DESIGN.md §8): modeled results are a pure function of
 * the config, never of wall-clock time, PRNG state, hash-table
 * iteration order, thread interleaving or ad-hoc fabric ledger
 * mutation.  Two layers of analysis share one rules table:
 *
 *   - per-line token rules — every rule is a token pattern plus a
 *     path scope, so the tool builds everywhere the engine builds
 *     (no libclang) and runs in milliseconds as an ordinary ctest;
 *   - cross-TU passes (symbols.hh/callgraph.hh/taint.hh) — a
 *     symbol-extraction pass feeds transitive taint propagation
 *     ("taint-*" rules, reported with the full call chain) and the
 *     architecture-layering check on the include DAG ("layering").
 *
 * Suppression has two layers, both requiring a written reason:
 *   - per-line annotations:  // khuzdul-lint: allow(<rule>) <reason>
 *     (on the flagged line, or alone on the line above it)
 *   - a checked-in allowlist file granting one (path, rule) pair
 *     per line for whole-file exemptions.
 * Strict mode additionally fails on *stale* suppressions — an
 * allowlist entry or annotation that no longer matches a finding —
 * so the exemption set can only shrink by itself, never rot.
 */

#ifndef KHUZDUL_TOOLS_LINT_ANALYZER_HH
#define KHUZDUL_TOOLS_LINT_ANALYZER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/callgraph.hh"
#include "tools/lint/symbols.hh"
#include "tools/lint/taint.hh"

namespace khuzdul
{
namespace lint
{

/** Where a rule applies. */
enum class RuleScope
{
    AllSources,    ///< every scanned file
    HeadersOnly,   ///< every scanned .hh/.hpp/.h
    ModeledZones,  ///< src/core/, src/sim/, src/engines/
    /** The fault-injection / recovery / steal-planning TUs:
     *  sim/faults.*, core/provider.*, core/circulant.*,
     *  core/steal/ and core/recovery/ (DESIGN.md §9, §11). */
    RecoveryPaths,
};

/** One entry of the rules table (`khuzdul_lint --rules`). */
struct RuleInfo
{
    std::string id;      ///< annotation grammar name, e.g. "wall-clock"
    RuleScope scope;
    std::string summary; ///< one-line contract statement
};

/** The full rules table, in reporting order. */
const std::vector<RuleInfo> &rules();

/** Whether @p id names a rule in the table. */
bool isRuleId(const std::string &id);

/** How a finding was suppressed. */
enum class SuppressionKind
{
    None,       ///< live violation
    Annotation, ///< per-line // khuzdul-lint: allow(...)
    Allowlist,  ///< matched an allowlist entry
};

/** One rule hit (live or suppressed). */
struct Finding
{
    std::string file;    ///< normalized path as scanned
    int line = 0;        ///< 1-based
    std::string rule;
    std::string message;
    std::string snippet; ///< trimmed source line
    /** For taint-* findings: the call chain from the flagged
     *  function down to the seed, "qual (file:line)" per hop. */
    std::vector<std::string> chain;
    SuppressionKind suppression = SuppressionKind::None;
    std::string reason;  ///< the written justification, if suppressed

    bool
    live() const
    {
        return suppression == SuppressionKind::None;
    }
};

/** One line of tools/lint_allowlist.txt: `<path> <rule> <reason>`. */
struct AllowlistEntry
{
    std::string path;   ///< matched as a /-anchored path suffix
    std::string rule;
    std::string reason;
    int line = 0;       ///< line in the allowlist file
    bool used = false;  ///< matched at least one finding this run
};

/** A suppression that suppressed nothing (strict-mode failure). */
struct StaleSuppression
{
    std::string file;  ///< source file, or the allowlist file itself
    int line = 0;
    std::string rule;
    std::string detail;
};

/** Which analysis layers run on top of the token rules. */
struct Options
{
    bool taint = true;     ///< cross-TU taint propagation
    bool layering = false; ///< include-DAG layer order + acyclicity
};

/** Aggregated result of one lint run. */
struct Report
{
    std::vector<Finding> findings;          ///< sorted (file, line, rule)
    std::vector<StaleSuppression> stale;    ///< unused suppressions
    std::vector<std::string> errors;        ///< grammar/IO/parse errors
    std::size_t filesScanned = 0;
    std::size_t functionsExtracted = 0;     ///< cross-TU symbol table
    std::size_t callEdges = 0;              ///< resolved call edges
    std::size_t factSeeds = 0;              ///< unsanctioned taint seeds

    /** Findings not suppressed — always failures. */
    std::size_t violations() const;

    /** Suppressed findings (annotation or allowlist). */
    std::size_t suppressed() const;

    /** Exit-status predicate: strict also fails on stale/errors. */
    bool passes(bool strict) const;
};

/** A full cross-TU run: the report plus the program/graph/taint
 *  state behind it, kept for --facts and --why. */
struct Analysis
{
    Report report;
    Program program;
    CallGraph graph;
    TaintResult taint;
};

/**
 * Parse an allowlist file's contents.  Lines are
 * `<path> <rule-id> <reason...>`; blank lines and `#` comments are
 * skipped.  Malformed lines append to @p errors.
 */
std::vector<AllowlistEntry> parseAllowlist(const std::string &content,
                                           const std::string &file,
                                           std::vector<std::string> &errors);

/**
 * Scan one in-memory source (the testing seam — fixtures feed
 * snippets through this without touching the filesystem).  Token
 * rules only: cross-TU passes need the whole program, so they run
 * in analyzeProgram.  @p path decides zone scoping and allowlist
 * matching; findings, stale annotations and grammar errors
 * accumulate into @p out; matching entries of @p allowlist get
 * their used flag set.
 */
void analyzeSource(const std::string &path, const std::string &content,
                   std::vector<AllowlistEntry> *allowlist, Report &out);

/**
 * Scan files and directory trees (recursing into .cc/.hh sources
 * and friends), run the token rules plus the cross-TU passes that
 * @p options enables, apply @p allowlist, and flag its unused
 * entries as stale.  Findings are sorted for deterministic output.
 */
Analysis analyzeProgram(const std::vector<std::string> &paths,
                        std::vector<AllowlistEntry> allowlist,
                        const std::string &allowlist_file,
                        const Options &options);

/** analyzeProgram's report alone (the legacy entry point). */
Report analyzePaths(const std::vector<std::string> &paths,
                    std::vector<AllowlistEntry> allowlist,
                    const std::string &allowlist_file,
                    const Options &options = Options{});

/** Machine-readable report (the --json output, schema version 2). */
std::string toJson(const Report &report, bool strict);

/** Human-readable report lines (one per finding/stale/error). */
std::string toText(const Report &report, bool strict);

/** The --rules table as text (snapshot-tested). */
std::string rulesText();

/** The --help text, including the exit-code contract. */
std::string usageText();

} // namespace lint
} // namespace khuzdul

#endif // KHUZDUL_TOOLS_LINT_ANALYZER_HH
