/**
 * @file
 * khuzdul_lint — a token/line-level static analyzer that enforces
 * the determinism contract (DESIGN.md §8): modeled results are a
 * pure function of the config, never of wall-clock time, PRNG
 * state, hash-table iteration order, thread interleaving or ad-hoc
 * fabric ledger mutation.  The scanner is deliberately source-level
 * (no libclang): every rule is a token pattern plus a path scope,
 * so the tool builds everywhere the engine builds and runs in
 * milliseconds as an ordinary ctest.
 *
 * Suppression has two layers, both requiring a written reason:
 *   - per-line annotations:  // khuzdul-lint: allow(<rule>) <reason>
 *     (on the flagged line, or alone on the line above it)
 *   - a checked-in allowlist file granting one (path, rule) pair
 *     per line for whole-file exemptions such as the host-only
 *     stopwatch in src/support/timer.hh.
 * Strict mode additionally fails on *stale* suppressions — an
 * allowlist entry or annotation that no longer matches a finding —
 * so the exemption set can only shrink by itself, never rot.
 */

#ifndef KHUZDUL_TOOLS_LINT_ANALYZER_HH
#define KHUZDUL_TOOLS_LINT_ANALYZER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace khuzdul
{
namespace lint
{

/** Where a rule applies. */
enum class RuleScope
{
    AllSources,    ///< every scanned file
    HeadersOnly,   ///< every scanned .hh/.hpp/.h
    ModeledZones,  ///< src/core/, src/sim/, src/engines/
    /** The fault-injection / recovery / steal-planning TUs:
     *  sim/faults.*, core/provider.*, core/circulant.* and
     *  core/steal/ (DESIGN.md §9, §11). */
    RecoveryPaths,
};

/** One entry of the rules table (`khuzdul_lint --rules`). */
struct RuleInfo
{
    std::string id;      ///< annotation grammar name, e.g. "wall-clock"
    RuleScope scope;
    std::string summary; ///< one-line contract statement
};

/** The full rules table, in reporting order. */
const std::vector<RuleInfo> &rules();

/** Whether @p id names a rule in the table. */
bool isRuleId(const std::string &id);

/** How a finding was suppressed. */
enum class SuppressionKind
{
    None,       ///< live violation
    Annotation, ///< per-line // khuzdul-lint: allow(...)
    Allowlist,  ///< matched an allowlist entry
};

/** One rule hit (live or suppressed). */
struct Finding
{
    std::string file;    ///< normalized path as scanned
    int line = 0;        ///< 1-based
    std::string rule;
    std::string message;
    std::string snippet; ///< trimmed source line
    SuppressionKind suppression = SuppressionKind::None;
    std::string reason;  ///< the written justification, if suppressed

    bool
    live() const
    {
        return suppression == SuppressionKind::None;
    }
};

/** One line of tools/lint_allowlist.txt: `<path> <rule> <reason>`. */
struct AllowlistEntry
{
    std::string path;   ///< matched as a /-anchored path suffix
    std::string rule;
    std::string reason;
    int line = 0;       ///< line in the allowlist file
    bool used = false;  ///< matched at least one finding this run
};

/** A suppression that suppressed nothing (strict-mode failure). */
struct StaleSuppression
{
    std::string file;  ///< source file, or the allowlist file itself
    int line = 0;
    std::string rule;
    std::string detail;
};

/** Aggregated result of one lint run. */
struct Report
{
    std::vector<Finding> findings;          ///< sorted (file, line, rule)
    std::vector<StaleSuppression> stale;    ///< unused suppressions
    std::vector<std::string> errors;        ///< grammar/IO/parse errors
    std::size_t filesScanned = 0;

    /** Findings not suppressed — always failures. */
    std::size_t violations() const;

    /** Suppressed findings (annotation or allowlist). */
    std::size_t suppressed() const;

    /** Exit-status predicate: strict also fails on stale/errors. */
    bool passes(bool strict) const;
};

/**
 * Parse an allowlist file's contents.  Lines are
 * `<path> <rule-id> <reason...>`; blank lines and `#` comments are
 * skipped.  Malformed lines append to @p errors.
 */
std::vector<AllowlistEntry> parseAllowlist(const std::string &content,
                                           const std::string &file,
                                           std::vector<std::string> &errors);

/**
 * Scan one in-memory source (the testing seam — fixtures feed
 * snippets through this without touching the filesystem).
 * @p path decides zone scoping and allowlist matching; findings,
 * stale annotations and grammar errors accumulate into @p out;
 * matching entries of @p allowlist get their used flag set.
 */
void analyzeSource(const std::string &path, const std::string &content,
                   std::vector<AllowlistEntry> *allowlist, Report &out);

/**
 * Scan files and directory trees (recursing into .cc/.hh sources
 * and friends), apply @p allowlist, and flag its unused entries as
 * stale.  Findings are sorted for deterministic output.
 */
Report analyzePaths(const std::vector<std::string> &paths,
                    std::vector<AllowlistEntry> allowlist,
                    const std::string &allowlist_file);

/** Machine-readable report (the --json output, schema version 1). */
std::string toJson(const Report &report, bool strict);

/** Human-readable report lines (one per finding/stale/error). */
std::string toText(const Report &report, bool strict);

} // namespace lint
} // namespace khuzdul

#endif // KHUZDUL_TOOLS_LINT_ANALYZER_HH
