/**
 * @file
 * Cross-TU extraction pass for khuzdul_lint (DESIGN.md §8.4): a
 * lightweight, libclang-free scan over sanitized source lines that
 * produces (a) the project include graph, (b) a per-function symbol
 * table (qualified name, file, definition line, body range) and
 * (c) the raw call/fact sites inside each body that the call-graph
 * and taint passes (callgraph.{hh,cc}, taint.{hh,cc}) resolve.
 *
 * The extractor is a brace-depth state machine over comment- and
 * string-stripped lines: it recognizes namespace/class/function
 * scopes by token shape, which is exact for this codebase's style
 * (leading return types, no K&R, no decl-scope lambdas) and
 * fail-soft everywhere else — an unrecognized construct becomes an
 * anonymous block, never a parse error.  This file also owns the
 * path/zone classification and text utilities shared by every lint
 * pass.
 */

#ifndef KHUZDUL_TOOLS_LINT_SYMBOLS_HH
#define KHUZDUL_TOOLS_LINT_SYMBOLS_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace khuzdul
{
namespace lint
{

// ---------------------------------------------------------------
// Text and path utilities (shared by analyzer/callgraph/taint).
// ---------------------------------------------------------------

/** Forward/backslash and ./ normalization for scanned paths. */
std::string normalizePath(std::string path);

/** Whether @p dir appears in @p path on component boundaries. */
bool pathHasDir(const std::string &path, const std::string &dir);

bool endsWith(const std::string &s, const std::string &suffix);

bool isHeaderPath(const std::string &path);

bool isSourcePath(const std::string &path);

/** The zones whose results feed modeled makespans and ledgers. */
bool isModeledZone(const std::string &path);

/** core/parallel/ hosts the sanctioned threading primitives. */
bool isParallelRuntime(const std::string &path);

/** core/service/ is the multi-query scheduling runtime. */
bool isServiceRuntime(const std::string &path);

/** sim/fabric.* owns the ledger and may mutate it freely. */
bool isFabricImpl(const std::string &path);

/** Fault-trigger / recovery / steal-planning TUs (§9, §11). */
bool isRecoveryPath(const std::string &path);

/** src/core/kernels/ — the one home for CPU intrinsics. */
bool isKernelTier(const std::string &path);

/**
 * Blank out comments and string/char literal contents of one line,
 * carrying block-comment state across lines.  Replaced bytes become
 * spaces so column numbers keep meaning.
 */
std::string sanitizeLine(const std::string &raw, bool &in_block_comment);

bool isBlank(const std::string &s);

std::string trimCopy(const std::string &s);

// ---------------------------------------------------------------
// Extraction results.
// ---------------------------------------------------------------

/** One `#include "..."` of a scanned file (project includes only). */
struct IncludeSite
{
    std::string target; ///< the quoted path as written
    int line = 0;       ///< 1-based
};

/** One call-shaped token inside a function body. */
struct CallSite
{
    std::string token; ///< possibly qualified, `::` normalized
    int line = 0;
    bool member = false; ///< reached through `.` or `->`
};

/** One determinism-fact token inside a function body. */
struct FactSite
{
    std::string fact; ///< base rule id, e.g. "wall-clock"
    int line = 0;
};

/** One scanned file, post-sanitization. */
struct SourceFile
{
    std::string path;                   ///< normalized
    std::vector<std::string> codeLines; ///< comments/strings blanked
    std::vector<IncludeSite> includes;
    /** line → (rule → reason) granted by `// khuzdul-lint:
     *  allow(...)` whose shield resolves to that line (filled by
     *  the analyzer before the taint pass runs). */
    std::map<int, std::map<std::string, std::string>> allowedRules;
};

/** One function definition found by the extractor. */
struct FunctionDef
{
    std::string qualified; ///< ns::Class::name as written
    std::string file;
    int line = 0;      ///< line carrying the function name
    int bodyBegin = 0; ///< line of the opening brace
    int bodyEnd = 0;   ///< line of the closing brace
    bool inClass = false;
    bool anonNamespace = false; ///< internal linkage: same-TU only
    bool method = false;        ///< inClass, or parent is a class
    std::vector<CallSite> calls;
    std::vector<FactSite> facts;
};

/** The whole-program view the cross-TU passes run on. */
struct Program
{
    std::vector<SourceFile> files;     ///< sorted by path
    std::vector<FunctionDef> functions; ///< file order, then line
    std::set<std::string> classQualified; ///< qualified class names
    std::set<std::string> classNames;     ///< bare class names
};

/**
 * The fact patterns the extractor seeds from: pairs of (base rule
 * id, token regex source).  Kept in one place so the taint facts
 * can never drift from the analyzer's token rules, which build
 * their patterns from the same strings.
 */
const std::vector<std::pair<std::string, std::string>> &factPatterns();

/**
 * Extract functions, classes, includes and body call/fact sites
 * from @p file (whose path/codeLines are already filled) and append
 * them to @p program.  @p rawLines are needed because include paths
 * live inside string literals that sanitization blanks.
 */
void extractFile(Program &program, SourceFile file,
                 const std::vector<std::string> &rawLines);

/** Sort files/functions and resolve FunctionDef::method flags. */
void finalizeProgram(Program &program);

} // namespace lint
} // namespace khuzdul

#endif // KHUZDUL_TOOLS_LINT_SYMBOLS_HH
