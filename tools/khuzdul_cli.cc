/**
 * @file
 * The `khuzdul` command-line tool: generate / inspect / convert
 * graphs, compile and inspect plans, and run the GPM applications
 * on the simulated cluster without writing any C++.
 *
 * Subcommands:
 *   generate  synthesize a graph to an edge-list or binary file
 *   info      print graph statistics
 *   convert   edge-list <-> binary
 *   plan      show the compiled EXTEND plan of a pattern
 *   count     count a pattern's embeddings
 *   motifs    k-motif census
 *   fsm       frequent subgraph mining on a labeled graph
 *   serve     run many queries concurrently through QueryService
 *
 * Run `khuzdul help` or `khuzdul help <subcommand>` for usage.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "apps/fsm.hh"
#include "apps/gpm_apps.hh"
#include "core/kernels/kernels.hh"
#include "engines/khuzdul_system.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/orientation.hh"
#include "pattern/planner.hh"
#include "sim/faults.hh"
#include "sim/trace.hh"
#include "support/check.hh"
#include "support/format.hh"
#include "support/timer.hh"

namespace
{

using namespace khuzdul;

/** Minimal --key value / --flag argument map. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                KHUZDUL_FATAL("unexpected argument '" << key
                              << "' (options start with --)");
            key = key.substr(2);
            // Both --key value and --key=value are accepted.
            std::string value;
            if (const std::size_t eq = key.find('=');
                eq != std::string::npos) {
                value = key.substr(eq + 1);
                key = key.substr(0, eq);
            } else if (i + 1 < argc
                       && std::string(argv[i + 1]).rfind("--", 0)
                           != 0) {
                value = argv[++i];
            }
            values_[key] = value;
            // Repeatable options (--fault) read every occurrence.
            occurrences_[key].push_back(value);
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
            ? fallback : std::stoull(it->second);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stod(it->second);
    }

    /** Every value of a repeatable option, in command-line order. */
    std::vector<std::string>
    getList(const std::string &key) const
    {
        auto it = occurrences_.find(key);
        return it == occurrences_.end() ? std::vector<std::string>{}
                                        : it->second;
    }

  private:
    std::map<std::string, std::string> values_;
    std::map<std::string, std::vector<std::string>> occurrences_;
};

/**
 * Parse a pattern spec: named patterns ("triangle", "clique4",
 * "path3", "cycle5", "star4", "diamond", "tailed", "house") or an
 * explicit edge list like "0-1,1-2,2-0".
 */
Pattern
parsePattern(const std::string &spec)
{
    const auto sized = [&spec](const std::string &prefix) -> int {
        if (spec.rfind(prefix, 0) != 0)
            return -1;
        return std::atoi(spec.c_str() + prefix.size());
    };
    if (spec == "triangle")
        return Pattern::triangle();
    if (spec == "diamond")
        return Pattern::diamond();
    if (spec == "tailed")
        return Pattern::tailedTriangle();
    if (spec == "house") {
        return Pattern(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4},
                           {1, 4}});
    }
    if (int k = sized("clique"); k > 0)
        return Pattern::clique(k);
    if (int k = sized("path"); k > 0)
        return Pattern::pathOf(k);
    if (int k = sized("cycle"); k > 0)
        return Pattern::cycleOf(k);
    if (int k = sized("star"); k > 0)
        return Pattern::starOf(k);

    // Edge-list form: "0-1,1-2,...".
    std::vector<std::pair<int, int>> edges;
    int max_vertex = -1;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        int u = 0;
        int v = 0;
        if (std::sscanf(spec.c_str() + pos, "%d-%d", &u, &v) != 2)
            KHUZDUL_FATAL("cannot parse pattern spec '" << spec << "'");
        edges.emplace_back(u, v);
        max_vertex = std::max({max_vertex, u, v});
        pos = spec.find(',', pos);
        if (pos == std::string::npos)
            break;
        ++pos;
    }
    KHUZDUL_REQUIRE(!edges.empty(), "empty pattern spec");
    return Pattern(max_vertex + 1, edges);
}

/**
 * Load a graph.  Accepted forms:
 *  - "standin:<abbr>"   one of the paper's stand-in datasets
 *  - "rmat:V:E[:a[:seed]]", "er:V:E[:seed]", "sw:V:k:beta[:seed]"
 *  - a file path (binary if it has the Khuzdul magic, else text)
 */
Graph
loadGraph(const std::string &spec)
{
    const auto split = [](const std::string &s) {
        std::vector<std::string> parts;
        std::size_t start = 0;
        while (true) {
            const std::size_t colon = s.find(':', start);
            parts.push_back(s.substr(start, colon - start));
            if (colon == std::string::npos)
                break;
            start = colon + 1;
        }
        return parts;
    };
    const auto parts = split(spec);
    const std::string &kind = parts[0];
    if (kind == "standin") {
        KHUZDUL_REQUIRE(parts.size() == 2, "standin:<abbr>");
        return datasets::byName(parts[1]).graph;
    }
    if (kind == "rmat") {
        KHUZDUL_REQUIRE(parts.size() >= 3, "rmat:V:E[:a[:seed]]");
        const auto v = std::stoull(parts[1]);
        const auto e = std::stoull(parts[2]);
        const double a = parts.size() > 3 ? std::stod(parts[3]) : 0.55;
        const auto seed = parts.size() > 4 ? std::stoull(parts[4]) : 1;
        const double rest = (1.0 - a) / 3.0;
        return gen::rmat(static_cast<VertexId>(v), e, a, rest, rest,
                         seed);
    }
    if (kind == "er") {
        KHUZDUL_REQUIRE(parts.size() >= 3, "er:V:E[:seed]");
        return gen::erdosRenyi(
            static_cast<VertexId>(std::stoull(parts[1])),
            std::stoull(parts[2]),
            parts.size() > 3 ? std::stoull(parts[3]) : 1);
    }
    if (kind == "sw") {
        KHUZDUL_REQUIRE(parts.size() >= 4, "sw:V:k:beta[:seed]");
        return gen::smallWorld(
            static_cast<VertexId>(std::stoull(parts[1])),
            static_cast<unsigned>(std::stoull(parts[2])),
            std::stod(parts[3]),
            parts.size() > 4 ? std::stoull(parts[4]) : 1);
    }
    // A file: sniff the binary magic.
    std::ifstream in(spec, std::ios::binary);
    KHUZDUL_REQUIRE(in.is_open(), "cannot open graph file " << spec);
    char magic[8] = {};
    in.read(magic, 8);
    in.clear();
    in.seekg(0);
    std::uint64_t head = 0;
    std::memcpy(&head, magic, sizeof(head));
    if (head == 0x4b48555a44554c31ULL) // the binary format magic
        return io::readBinary(in);
    return io::readEdgeList(in);
}

core::EngineConfig
engineConfigFromArgs(const Args &args)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(
        static_cast<NodeId>(args.getU64("nodes", 8)));
    config.cluster.socketsPerNode =
        static_cast<unsigned>(args.getU64("sockets", 2));
    config.chunkBytes = args.getU64("chunk-bytes", 1 << 20);
    config.cacheFraction = args.getDouble("cache-fraction", 0.15);
    if (args.has("no-cache"))
        config.cachePolicy = core::CachePolicy::None;
    if (args.has("no-hds"))
        config.horizontalSharing = false;
    if (args.has("no-numa"))
        config.numaAware = false;
    config.kernelMode = core::parseKernelMode(
        args.get("kernel", "auto"));
    // Host-side only: results are bit-identical for every value.
    config.hostThreads =
        static_cast<unsigned>(args.getU64("threads", 0));
    // Deterministic fault schedule (repeatable --fault, §9).
    for (const std::string &spec : args.getList("fault"))
        config.faults.add(spec);
    config.faults.maxRetries =
        static_cast<unsigned>(args.getU64("fault-retries", 3));
    // Deterministic post-barrier work stealing (DESIGN.md §11).
    const std::string steal = args.get("steal", "off");
    KHUZDUL_REQUIRE(steal == "on" || steal == "off",
                    "--steal must be 'on' or 'off', got '"
                        << steal << "'");
    config.stealEnabled = steal == "on";
    config.stealBacklogThresholdNs =
        args.getDouble("steal-threshold", 1.0e5);
    // Crash recovery and query resilience (DESIGN.md §9).
    config.checkpointEnabled = args.has("checkpoint");
    config.deadlineNs = args.getDouble("deadline", 0.0);
    config.maxQueryRetries =
        static_cast<unsigned>(args.getU64("query-retries", 0));
    return config;
}

std::unique_ptr<engines::KhuzdulSystem>
systemFromArgs(const Graph &g, const Args &args)
{
    const std::string style = args.get("system", "graphpi");
    if (style == "automine")
        return engines::KhuzdulSystem::kAutomine(
            g, engineConfigFromArgs(args));
    KHUZDUL_REQUIRE(style == "graphpi",
                    "--system must be automine or graphpi");
    return engines::KhuzdulSystem::kGraphPi(g,
                                            engineConfigFromArgs(args));
}

/**
 * Optional `--trace FILE` wiring: an open stream plus the JSON-lines
 * sink attached to the engine.  Kept alive until the command
 * returns; both live on the heap so the sink's stream reference
 * survives the return from attachTrace.
 */
struct TraceOutput
{
    std::unique_ptr<std::ofstream> file;
    std::unique_ptr<sim::JsonLinesTraceSink> sink;
};

TraceOutput
attachTrace(engines::KhuzdulSystem &system, const Args &args)
{
    TraceOutput out;
    const std::string path = args.get("trace", "");
    if (path.empty())
        return out;
    out.file = std::make_unique<std::ofstream>(path);
    KHUZDUL_REQUIRE(out.file->is_open(), "cannot write " << path);
    out.sink = std::make_unique<sim::JsonLinesTraceSink>(*out.file);
    system.engine().setTraceSink(out.sink.get());
    return out;
}

/** Optional `--stats-json FILE`: dump RunStats machine-readably. */
void
writeStatsJson(const sim::RunStats &stats, const Args &args)
{
    const std::string path = args.get("stats-json", "");
    if (path.empty())
        return;
    std::ofstream out(path);
    KHUZDUL_REQUIRE(out.is_open(), "cannot write " << path);
    out << stats.toJson();
}

void
printStats(const sim::RunStats &stats)
{
    std::printf("modeled cluster time: %s\n",
                formatTime(static_cast<std::uint64_t>(
                    stats.makespanNs())).c_str());
    std::printf("network traffic:      %s in %s messages\n",
                formatBytes(stats.totalBytesSent()).c_str(),
                formatCount(stats.totalMessages()).c_str());
    if (stats.staticCacheHitRate() > 0)
        std::printf("static cache hits:    %s\n",
                    formatPercent(stats.staticCacheHitRate()).c_str());
}

int
cmdGenerate(const Args &args)
{
    const Graph g = loadGraph(args.get("spec", "rmat:10000:80000"));
    const std::string out = args.get("out", "graph.el");
    std::ofstream file(out, std::ios::binary);
    KHUZDUL_REQUIRE(file.is_open(), "cannot write " << out);
    if (args.get("format", "text") == "binary")
        io::writeBinary(g, file);
    else
        io::writeEdgeList(g, file);
    std::printf("wrote %u vertices / %llu edges to %s\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                out.c_str());
    return 0;
}

int
cmdInfo(const Args &args)
{
    const Graph g = loadGraph(args.get("graph", ""));
    std::printf("vertices:    %s\n",
                formatCount(g.numVertices()).c_str());
    std::printf("edges:       %s\n", formatCount(g.numEdges()).c_str());
    std::printf("max degree:  %s\n",
                formatCount(g.maxDegree()).c_str());
    std::printf("avg degree:  %.2f\n",
                g.numVertices() == 0
                    ? 0.0
                    : static_cast<double>(g.numArcs())
                        / g.numVertices());
    std::printf("size:        %s\n", formatBytes(g.sizeBytes()).c_str());
    std::printf("labeled:     %s\n", g.labeled() ? "yes" : "no");
    // Log-scale degree histogram.
    std::map<int, Count> histogram;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        int bucket = 0;
        while ((1ull << bucket) < g.degree(v))
            ++bucket;
        ++histogram[bucket];
    }
    std::printf("degree histogram (bucket = degree <= 2^k):\n");
    for (const auto &[bucket, count] : histogram)
        std::printf("  2^%-2d %10s\n", bucket,
                    formatCount(count).c_str());
    return 0;
}

int
cmdConvert(const Args &args)
{
    const Graph g = loadGraph(args.get("in", ""));
    const std::string out = args.get("out", "");
    KHUZDUL_REQUIRE(!out.empty(), "--out is required");
    std::ofstream file(out, std::ios::binary);
    KHUZDUL_REQUIRE(file.is_open(), "cannot write " << out);
    if (args.get("format", "binary") == "binary")
        io::writeBinary(g, file);
    else
        io::writeEdgeList(g, file);
    std::printf("converted to %s\n", out.c_str());
    return 0;
}

int
cmdPlan(const Args &args)
{
    const Pattern p = parsePattern(args.get("pattern", "triangle"));
    PlanOptions options;
    options.induced = args.has("induced");
    const GraphProfile profile{
        args.getDouble("profile-vertices", 100000.0),
        args.getDouble("profile-degree", 16.0)};
    if (args.get("system", "graphpi") == "automine") {
        std::printf("%s", compileAutomine(p, options).toString().c_str());
    } else {
        std::printf("%s",
                    compileGraphPi(p, profile, options)
                        .toString().c_str());
    }
    return 0;
}

int
cmdCount(const Args &args)
{
    const Graph g = loadGraph(args.get("graph", ""));
    const Pattern p = parsePattern(args.get("pattern", "triangle"));
    auto system = systemFromArgs(g, args);
    const TraceOutput trace = attachTrace(*system, args);
    PlanOptions options;
    options.induced = args.has("induced");
    Timer timer;
    const Count count = system->count(p, options);
    std::printf("%s embeddings of %s\n", formatCount(count).c_str(),
                p.toString().c_str());
    printStats(system->stats());
    writeStatsJson(system->stats(), args);
    std::printf("host wall time:       %s\n",
                formatTime(timer.elapsedNs()).c_str());
    return 0;
}

int
cmdMotifs(const Args &args)
{
    const Graph g = loadGraph(args.get("graph", ""));
    auto system = systemFromArgs(g, args);
    const TraceOutput trace = attachTrace(*system, args);
    const int k = static_cast<int>(args.getU64("size", 3));
    const auto census = apps::motifCount(*system, k);
    for (const auto &motif : census)
        std::printf("%-28s %16s\n", motif.pattern.toString().c_str(),
                    formatCount(motif.count).c_str());
    printStats(system->stats());
    writeStatsJson(system->stats(), args);
    return 0;
}

int
cmdFsm(const Args &args)
{
    Graph g = loadGraph(args.get("graph", ""));
    if (!g.labeled())
        gen::randomizeLabels(
            g, static_cast<Label>(args.getU64("labels", 3)),
            args.getU64("label-seed", 1));
    auto system = systemFromArgs(g, args);
    const TraceOutput trace = attachTrace(*system, args);
    apps::KhuzdulFsmBackend backend(*system);
    apps::FsmConfig config;
    config.minSupport = args.getU64("support", 100);
    config.maxEdges = static_cast<int>(args.getU64("max-edges", 3));
    const auto result = apps::mineFrequentSubgraphs(backend, g, config);
    std::printf("%zu frequent patterns (of %s candidates):\n",
                result.frequent.size(),
                formatCount(result.patternsEvaluated).c_str());
    for (const auto &fp : result.frequent)
        std::printf("%-34s support %12s\n",
                    fp.pattern.toString().c_str(),
                    formatCount(fp.support).c_str());
    printStats(system->stats());
    writeStatsJson(system->stats(), args);
    return 0;
}

/**
 * Multi-query mode: submit every --query to one QueryService over a
 * shared resident graph.  Per-query modeled results are printed in
 * submission order (they are deterministic regardless of the mix);
 * the footer reports what concurrency and sharing the service saw.
 */
int
cmdServe(const Args &args)
{
    const Graph g = loadGraph(args.get("graph", ""));
    const core::EngineConfig config = engineConfigFromArgs(args);
    core::GraphContext context(g, config.graphSetup());

    core::ServiceOptions options;
    options.maxInFlight =
        static_cast<unsigned>(args.getU64("max-in-flight", 4));
    options.hostThreads = config.hostThreads;
    core::QueryService service(context, options);

    const std::string style = args.get("system", "graphpi");
    KHUZDUL_REQUIRE(style == "automine" || style == "graphpi",
                    "--system must be automine or graphpi");
    PlanOptions plan_options;
    plan_options.induced = args.has("induced");

    const std::vector<std::string> specs = args.getList("query");
    KHUZDUL_REQUIRE(!specs.empty(),
                    "at least one --query PATTERN is required");
    std::vector<Pattern> patterns;
    for (const std::string &spec : specs) {
        const Pattern p = parsePattern(spec);
        const ExtendPlan plan = style == "automine"
            ? compileAutomine(p, plan_options)
            : compileGraphPi(p, context.profile(), plan_options);
        service.submit(plan, config.session());
        patterns.push_back(p);
    }
    Timer timer;
    service.wait();

    std::size_t failures = 0;
    for (std::size_t id = 0; id < patterns.size(); ++id) {
        const core::QueryResult &query = service.result(id);
        if (query.failed) {
            ++failures;
            std::printf("query %zu  %-28s FAILED: %s\n", id,
                        patterns[id].toString().c_str(),
                        query.error.c_str());
            continue;
        }
        std::printf("query %zu  %-28s %16s embeddings  modeled %s\n",
                    id, patterns[id].toString().c_str(),
                    formatCount(query.count).c_str(),
                    formatTime(static_cast<std::uint64_t>(
                        query.stats.makespanNs())).c_str());
    }
    std::printf("\n%zu queries, peak %u in flight "
                "(admission bound %u)\n",
                service.completed(), service.peakInFlight(),
                options.maxInFlight);
    std::printf("cross-query shared-cache hits: %s of %s probes\n",
                formatCount(context.crossQueryHits()).c_str(),
                formatCount(context.crossQueryProbes()).c_str());
    std::printf("shared fabric traffic: %s\n",
                formatBytes(context.sharedTotalBytes()).c_str());
    std::printf("host wall time:        %s\n",
                formatTime(timer.elapsedNs()).c_str());
    if (failures > 0) {
        std::fprintf(stderr, "%zu of %zu queries failed\n", failures,
                     patterns.size());
        return 1;
    }
    return 0;
}

int
cmdHelp(const std::string &topic)
{
    if (topic == "generate") {
        std::puts("khuzdul generate --spec <graph-spec> --out FILE "
                  "[--format text|binary]");
    } else if (topic == "count") {
        std::puts("khuzdul count --graph <graph-spec> --pattern SPEC\n"
                  "  [--system automine|graphpi] [--induced]\n"
                  "  [--nodes N] [--sockets S] [--chunk-bytes B]\n"
                  "  [--cache-fraction F] [--no-cache] [--no-hds] "
                  "[--no-numa]\n"
                  "  [--kernel auto|merge|gallop|bitmap|simd]\n"
                  "  [--threads N]  host threads running simulated "
                  "units (0 = all;\n"
                  "                 modeled results identical for "
                  "every N)\n"
                  "  [--fault SPEC]...  inject a deterministic fabric "
                  "fault; SPEC is\n"
                  "      drop:SRC-DST:msg=N[:count=K]\n"
                  "      timeout:SRC-DST:msg=N[:count=K]\n"
                  "      degrade:SRC-DST:factor=F[:from=NS][:until=NS]"
                  "\n"
                  "      down:node=D[:from=NS][:until=NS]  (no until "
                  "= permanent)\n"
                  "      crash:UNIT:level=L[:chunk=K]  kill execution "
                  "unit UNIT at its\n"
                  "          K-th chunk of level L (default K = 1); "
                  "survivors adopt\n"
                  "          its chunks from the last checkpoint\n"
                  "      (SRC/DST node ids or *; counts are exact "
                  "under any plan)\n"
                  "  [--fault-retries N]  per-batch retry budget "
                  "(default 3)\n"
                  "  [--checkpoint]  take level-barrier checkpoints "
                  "even without a\n"
                  "      crash plan (charged via CostModel::"
                  "checkpointNs)\n"
                  "  [--deadline NS]  fail the query with a typed "
                  "DeadlineExceeded\n"
                  "      error once its modeled time passes NS "
                  "(0 = none)\n"
                  "  [--steal on|off]  deterministic inter-unit work "
                  "stealing\n"
                  "      (default off): idle units take backlogged "
                  "peers' chunks,\n"
                  "      paying the column transfer + handshake; "
                  "counts and modeled\n"
                  "      results stay bit-identical at every "
                  "--threads value\n"
                  "  [--steal-threshold NS]  min modeled backlog "
                  "before a unit\n"
                  "      donates (default 100000)\n"
                  "  [--stats-json FILE] [--trace FILE]\n"
                  "exit codes: 0 ok, 1 bad invocation or failed "
                  "query, 2 unrecoverable\n"
                  "  modeled fault (fault-retry budget exhausted, "
                  "crash with no survivors)");
    } else if (topic == "motifs") {
        std::puts("khuzdul motifs --graph <graph-spec> [--size K]\n"
                  "  [--system automine|graphpi]\n"
                  "  [--nodes N] [--sockets S] [--chunk-bytes B]\n"
                  "  [--cache-fraction F] [--no-cache] [--no-hds] "
                  "[--no-numa]\n"
                  "  [--kernel auto|merge|gallop|bitmap|simd]\n"
                  "  [--threads N]  host threads (modeled results "
                  "identical for every N)\n"
                  "  [--fault SPEC]...  deterministic fabric faults, "
                  "including\n"
                  "      crash:UNIT:level=L[:chunk=K] (grammar: help "
                  "count)\n"
                  "  [--fault-retries N] [--steal on|off] "
                  "[--steal-threshold NS]\n"
                  "  [--checkpoint] [--deadline NS]  crash recovery "
                  "and modeled\n"
                  "      deadline (details: help count)\n"
                  "  [--stats-json FILE] [--trace FILE]\n"
                  "Counts every induced K-vertex motif (default "
                  "K = 3).");
    } else if (topic == "fsm") {
        std::puts("khuzdul fsm --graph <graph-spec> [--support N] "
                  "[--max-edges K]\n"
                  "  [--labels L] [--label-seed S]  label an "
                  "unlabeled input graph\n"
                  "  [--system automine|graphpi]\n"
                  "  [--nodes N] [--sockets S] [--chunk-bytes B]\n"
                  "  [--cache-fraction F] [--no-cache] [--no-hds] "
                  "[--no-numa]\n"
                  "  [--kernel auto|merge|gallop|bitmap|simd]\n"
                  "  [--threads N]  host threads (modeled results "
                  "identical for every N)\n"
                  "  [--fault SPEC]...  deterministic fabric faults, "
                  "including\n"
                  "      crash:UNIT:level=L[:chunk=K] (grammar: help "
                  "count)\n"
                  "  [--fault-retries N] [--steal on|off] "
                  "[--steal-threshold NS]\n"
                  "  [--checkpoint] [--deadline NS]  crash recovery "
                  "and modeled\n"
                  "      deadline (details: help count)\n"
                  "  [--stats-json FILE] [--trace FILE]\n"
                  "Mines frequent subgraphs up to K edges under MNI "
                  "support.");
    } else if (topic == "serve") {
        std::puts("khuzdul serve --graph <graph-spec> "
                  "--query SPEC [--query SPEC]...\n"
                  "  [--system automine|graphpi] [--induced]\n"
                  "  [--max-in-flight N]  queries executing "
                  "concurrently (default 4;\n"
                  "                       later submissions queue "
                  "FIFO)\n"
                  "  [--threads N]  workers of the shared unit pool "
                  "(0 = all)\n"
                  "  [--query-retries N]  re-run a failed query up "
                  "to N times with\n"
                  "      modeled exponential backoff (default 0; "
                  "cancellations are\n"
                  "      never retried)\n"
                  "  [--deadline NS]  per-query modeled deadline "
                  "(typed\n"
                  "      DeadlineExceeded error; 0 = none)\n"
                  "  plus the cluster options of `count` (--nodes, "
                  "--sockets,\n"
                  "  --fault, --checkpoint, ...)\n"
                  "Per-query modeled results are bit-identical to "
                  "running each\n"
                  "query alone; the footer shows concurrency and "
                  "cross-query\n"
                  "shared-cache hits (host-side observability only).\n"
                  "Exits nonzero when any query failed.");
    } else {
        std::puts(
            "khuzdul — distributed graph pattern mining "
            "(paper reproduction)\n\n"
            "subcommands:\n"
            "  generate   synthesize a graph to a file\n"
            "  info       print graph statistics\n"
            "  convert    convert between text and binary formats\n"
            "  plan       show a pattern's compiled EXTEND plan\n"
            "  count      count embeddings of a pattern\n"
            "  motifs     k-motif census (induced counts)\n"
            "  fsm        frequent subgraph mining (MNI support)\n"
            "  serve      run many queries concurrently "
            "(QueryService)\n"
            "  help       this text / help <subcommand>\n\n"
            "graph specs: a file path, standin:<mc|pt|lj|uk|tw|fr|...>,\n"
            "  rmat:V:E[:a[:seed]], er:V:E[:seed], sw:V:k:beta[:seed]\n"
            "pattern specs: triangle, cliqueK, pathK, cycleK, starK,\n"
            "  diamond, tailed, house, or an edge list like "
            "0-1,1-2,2-0");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp("");
    const std::string command = argv[1];
    // Dispatch help before option parsing: its topic operand is not
    // a --option and must not be rejected as one.
    if (command == "help")
        return cmdHelp(argc > 2 ? argv[2] : "");
    try {
        const Args args(argc, argv, 2);
        if (command == "generate")
            return cmdGenerate(args);
        if (command == "info")
            return cmdInfo(args);
        if (command == "convert")
            return cmdConvert(args);
        if (command == "plan")
            return cmdPlan(args);
        if (command == "count")
            return cmdCount(args);
        if (command == "motifs")
            return cmdMotifs(args);
        if (command == "fsm")
            return cmdFsm(args);
        if (command == "serve")
            return cmdServe(args);
        std::fprintf(stderr, "unknown subcommand '%s'\n",
                     command.c_str());
        cmdHelp("");
        return 1;
    } catch (const sim::FabricFault &e) {
        // An unrecoverable modeled fault (retry budget exhausted, a
        // crash plan with no survivors, ...) is its own exit code so
        // scripts can tell "the modeled cluster failed" (2) apart
        // from "the invocation was wrong" (1).
        std::fprintf(stderr, "unrecoverable modeled fault: %s\n",
                     e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
