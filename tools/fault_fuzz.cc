/**
 * @file
 * Seeded deterministic fault-plan fuzzer (DESIGN.md §9).
 *
 * Generates a fixed battery of mixed fault plans — drop / timeout /
 * degrade / down / crash in every combination the grammar allows,
 * bounded so each plan leaves a recovery path — runs each against
 * the same graph and pattern, and requires the embedding count to
 * match the fault-free oracle exactly.  Every plan string is built
 * from a fixed per-plan seed, so a failure reproduces by rerunning
 * the binary (the offending plan is printed verbatim and can be
 * replayed through `khuzdul count --fault ...`).
 *
 * A slice of the plans additionally re-runs at a second host thread
 * count and asserts the purely modeled stats dump is byte-identical
 * (the §8 determinism contract under faults).
 *
 * Exit code 0 = every plan passed; 1 = mismatch (details on stderr).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "support/rng.hh"

namespace
{

using namespace khuzdul;

constexpr unsigned kNumPlans = 32;
constexpr std::uint64_t kSeedBase = 0xFA0117ULL;
constexpr NodeId kNodes = 4;
constexpr unsigned kSockets = 2; // 8 execution units

core::EngineConfig
fuzzConfig(bool steal)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(kNodes);
    config.cluster.socketsPerNode = kSockets;
    config.chunkBytes = 16 << 10; // several chunks per level
    config.stealEnabled = steal;
    return config;
}

/** One deterministic mixed plan: 1-3 specs drawn from the full
 *  fault ladder, bounded so the run always has a recovery path
 *  (counts <= 4 under the default per-batch retry budget of 3,
 *  at most one crashed unit so survivors remain to adopt). */
std::vector<std::string>
makePlan(Rng &rng)
{
    std::vector<std::string> specs;
    const unsigned n = 1 + static_cast<unsigned>(rng.nextBounded(3));
    bool used_crash = false;
    bool used_down = false;
    for (unsigned s = 0; s < n; ++s) {
        switch (rng.nextBounded(5)) {
        case 0:
            specs.push_back(
                "drop:*-*:msg=" + std::to_string(1 + rng.nextBounded(6))
                + ":count=" + std::to_string(1 + rng.nextBounded(4)));
            break;
        case 1: {
            // A concrete non-self link: dst = src + step (mod N).
            const std::uint64_t src = rng.nextBounded(kNodes);
            const std::uint64_t dst =
                (src + 1 + rng.nextBounded(kNodes - 1)) % kNodes;
            specs.push_back(
                "timeout:" + std::to_string(src) + "-"
                + std::to_string(dst)
                + ":msg=" + std::to_string(1 + rng.nextBounded(6))
                + ":count=" + std::to_string(1 + rng.nextBounded(4)));
            break;
        }
        case 2:
            specs.push_back(
                "degrade:*-*:factor="
                + std::to_string(2 + rng.nextBounded(7)) + ":from=0");
            break;
        case 3:
            if (used_down) // one down node keeps a quorum reachable
                break;
            used_down = true;
            specs.push_back(
                "down:node=" + std::to_string(rng.nextBounded(kNodes))
                + ":from=0");
            break;
        default:
            if (used_crash) // >= 1 survivor must remain to adopt
                break;
            used_crash = true;
            specs.push_back(
                "crash:"
                + std::to_string(rng.nextBounded(kNodes * kSockets))
                + ":level=" + std::to_string(rng.nextBounded(2))
                + ":chunk=" + std::to_string(1 + rng.nextBounded(3)));
            break;
        }
    }
    return specs;
}

Count
runPlan(const Graph &g, const Pattern &p,
        const std::vector<std::string> &specs, bool steal,
        unsigned threads, std::string *modeled_json)
{
    core::EngineConfig config = fuzzConfig(steal);
    config.hostThreads = threads;
    for (const std::string &spec : specs)
        config.faults.add(spec);
    auto system = engines::KhuzdulSystem::kGraphPi(g, config);
    const Count count = system->count(p);
    if (modeled_json)
        *modeled_json = system->stats().toJson(false);
    return count;
}

} // namespace

int
main()
{
    const Graph g = gen::rmat(280, 1800, 0.5, 0.5 / 3, 0.5 / 3, 99);
    const Pattern p = Pattern::triangle();

    const Count oracle =
        runPlan(g, p, {}, /*steal=*/false, /*threads=*/1, nullptr);
    std::printf("fault_fuzz: oracle count %llu, %u plans\n",
                static_cast<unsigned long long>(oracle), kNumPlans);

    unsigned failures = 0;
    for (unsigned i = 0; i < kNumPlans; ++i) {
        Rng rng(kSeedBase + i);
        const std::vector<std::string> specs = makePlan(rng);
        const bool steal = rng.coin(0.5);
        std::string plan_text;
        for (const std::string &spec : specs)
            plan_text += (plan_text.empty() ? "" : " ") + spec;

        std::string json_a;
        const Count count =
            runPlan(g, p, specs, steal, 1, &json_a);
        bool ok = count == oracle;
        if (!ok)
            std::fprintf(stderr,
                         "plan %u [%s] steal=%d: count %llu != "
                         "oracle %llu\n",
                         i, plan_text.c_str(), steal,
                         static_cast<unsigned long long>(count),
                         static_cast<unsigned long long>(oracle));

        // Every 4th plan: the modeled dump must not depend on the
        // host thread count, faults and all (§8).
        if (ok && i % 4 == 0) {
            std::string json_b;
            runPlan(g, p, specs, steal, 4, &json_b);
            if (json_a != json_b) {
                ok = false;
                std::fprintf(stderr,
                             "plan %u [%s]: modeled stats differ "
                             "between --threads 1 and 4\n",
                             i, plan_text.c_str());
            }
        }
        if (!ok)
            ++failures;
        else
            std::printf("plan %2u ok  [%s] steal=%d\n", i,
                        plan_text.c_str(), steal);
    }

    if (failures > 0) {
        std::fprintf(stderr, "fault_fuzz: %u of %u plans FAILED\n",
                     failures, kNumPlans);
        return 1;
    }
    std::printf("fault_fuzz: all %u plans exact\n", kNumPlans);
    return 0;
}
